#include "fl/federated_trainer.h"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <optional>

#include "common/binary_io.h"
#include "common/check.h"
#include "common/env.h"
#include "common/finite.h"
#include "common/stopwatch.h"
#include "fl/compression.h"
#include "fl/local_trainer.h"
#include "fl/transport/link.h"
#include "nn/checkpoint.h"

namespace lighttr::fl {

namespace {

// Everything one client's round-trip needs, forked/derived on the
// coordinating thread in canonical selection order BEFORE any task
// runs. This is the determinism contract of the parallel round: the
// stream a client consumes depends only on its position in the
// selection, never on which executor runs it or when.
struct ClientTask {
  size_t client_index = 0;
  Rng update_rng{0};  // local-update stream (always forked)
  Rng noise_rng{0};   // privacy stream (forked only when privacy is on)
  Rng fault_rng{0};   // dropout/backoff/corruption (only when injecting)
  Rng net_rng{0};     // channel faults (only when the transport can fault)
  Rng adv_rng{0};     // poison jitter (only for attackers in attack rounds)
  bool poison = false;  // this task's client is an active attacker
};

// One client's outcome, written by exactly one task into a pre-sized
// slot. The coordinating thread folds the slots into round telemetry in
// canonical selection order, so every floating-point accumulation has a
// fixed order regardless of thread count.
struct ClientSlot {
  bool contacted = false;  // survived the dropout/retry gauntlet
  bool trained = false;    // ran the local update (pull succeeded)
  bool straggler = false;  // trained but missed the round deadline
  bool net_lost = false;   // pull or push lost to network faults
  bool rejected = false;   // upload failed server-side screening
  bool corrupt = false;    // rejection was for non-finite scalars
  bool clipped = false;    // upload was norm-clipped by screening
  bool poisoned = false;   // upload rewritten by the injected adversary
  int attempts = 0;        // downlink sends (first contact + retries)
  int retries = 0;
  double backoff_s = 0.0;
  double loss = 0.0;          // valid when trained
  double delta_norm = 0.0;    // L2 delta of the accepted upload
  int64_t uplink_bytes = 0;   // legacy estimate (transport disabled only)
  transport::LinkStats link;  // exact frame accounting (transport on)
  std::vector<nn::Scalar> upload;  // valid when sent and not rejected
};

// Rolling window of accepted delta norms backing the kNormBound clip
// bound; small so one poisoned era cannot dominate the median forever.
constexpr size_t kNormBoundWindow = 64;

// The window's snapshot blob: bare count + doubles. It rides inside the
// CRC-protected run-state container, which supplies integrity.
std::string EncodeNormWindow(const std::vector<double>& window) {
  BinaryWriter writer;
  writer.WriteU64(window.size());
  for (double v : window) writer.WriteF64(v);
  return writer.Take();
}

Status DecodeNormWindow(const std::string& bytes,
                        std::vector<double>* window) {
  window->clear();
  if (bytes.empty()) return Status::Ok();  // pre-v5 snapshot: fresh window
  BinaryReader reader(bytes);
  uint64_t count = 0;
  LIGHTTR_RETURN_NOT_OK(reader.ReadU64(&count));
  if (count > kNormBoundWindow) {
    return Status::InvalidArgument("norm-bound window blob: size " +
                                   std::to_string(count) + " exceeds cap");
  }
  window->reserve(static_cast<size_t>(count));
  for (uint64_t i = 0; i < count; ++i) {
    double v = 0.0;
    LIGHTTR_RETURN_NOT_OK(reader.ReadF64(&v));
    if (!(v >= 0.0) || !IsFinite(v)) {
      return Status::InvalidArgument(
          "norm-bound window blob: invalid norm entry");
    }
    window->push_back(v);
  }
  if (!reader.AtEnd()) {
    return Status::InvalidArgument("norm-bound window blob: trailing bytes");
  }
  return Status::Ok();
}

}  // namespace

double PlainLocalUpdate::Update(int /*client_index*/, RecoveryModel* model,
                                nn::Optimizer* optimizer,
                                const traj::ClientDataset& data, int epochs,
                                Rng* rng) {
  LocalTrainOptions options;
  options.epochs = epochs;
  options.clip_norm = clip_norm_;
  return TrainLocal(model, optimizer, data.train, options, rng);
}

FederatedTrainer::FederatedTrainer(
    ModelFactory factory, const std::vector<traj::ClientDataset>* clients,
    FederatedTrainerOptions options)
    : clients_(clients),
      options_(options),
      pool_(ResolveThreadCount(options.threads)),
      rng_(options.seed),
      fault_rng_(0),
      valid_rng_(0),
      net_rng_(options.transport.channel_seed),
      monitor_(options.healing.monitor) {
  LIGHTTR_CHECK(clients != nullptr);
  LIGHTTR_CHECK(!clients->empty());
  // Process-global: see FederatedTrainerOptions::kernel.
  nn::ActivateKernels(options_.kernel);
  LIGHTTR_CHECK_GT(options_.client_fraction, 0.0);
  LIGHTTR_CHECK_LE(options_.client_fraction, 1.0);
  LIGHTTR_CHECK_GE(options_.rounds, 1);
  LIGHTTR_CHECK_GE(options_.local_epochs, 1);
  LIGHTTR_CHECK_GE(options_.tolerance.quorum_fraction, 0.0);
  LIGHTTR_CHECK_LE(options_.tolerance.quorum_fraction, 1.0);
  LIGHTTR_CHECK_GE(options_.tolerance.retry.max_retries, 0);
  LIGHTTR_CHECK_GE(options_.durability.snapshot_every, 1);
  LIGHTTR_CHECK_GE(options_.durability.keep_snapshots, 1);
  LIGHTTR_CHECK_GE(options_.healing.max_rollbacks, 0);
  LIGHTTR_CHECK_GE(options_.clip_norm, 0.0);
  if (options_.healing.enabled) {
    book_ = std::make_unique<ReputationBook>(static_cast<int>(clients->size()),
                                             options_.healing.reputation);
  }
  if (options_.adversary.Enabled()) {
    LIGHTTR_CHECK_LE(options_.adversary.num_attackers,
                     static_cast<int>(clients->size()));
    // Own stream from its own seed (like net_rng_): arming the attack
    // never perturbs honest init, sampling, or local-training draws.
    adversary_ = std::make_unique<AdversaryEngine>(options_.adversary);
  }

  Rng init_rng = rng_.Fork();
  global_model_ = factory(&init_rng);
  LIGHTTR_CHECK(global_model_ != nullptr);
  for (size_t i = 0; i < clients->size(); ++i) {
    Rng client_rng = rng_.Fork();
    client_models_.push_back(factory(&client_rng));
    // All replicas must agree on the parameter layout.
    LIGHTTR_CHECK_EQ(client_models_.back()->params().NumScalars(),
                     global_model_->params().NumScalars());
    client_optimizers_.push_back(std::make_unique<nn::AdamOptimizer>(
        static_cast<nn::Scalar>(options_.learning_rate)));
  }
  // Fork order (init, clients, faults, validation) is the deterministic
  // contract: a resumed trainer re-derives the same streams from the
  // seed, then overwrites rng_/fault_rng_ with the snapshot's states.
  fault_rng_ = rng_.Fork();
  valid_rng_ = rng_.Fork();
}

std::vector<traj::IncompleteTrajectory> FederatedTrainer::SampleValidationPool(
    size_t max_trajectories, Rng* rng) const {
  // Flatten every client's validation set, then sample uniformly so the
  // pool is not biased toward the first clients in enumeration order.
  std::vector<const traj::IncompleteTrajectory*> all;
  size_t total = 0;
  for (const traj::ClientDataset& client : *clients_) total += client.valid.size();
  all.reserve(total);
  for (const traj::ClientDataset& client : *clients_) {
    for (const auto& trajectory : client.valid) all.push_back(&trajectory);
  }
  const size_t want = std::min(max_trajectories, all.size());
  std::vector<size_t> picks = rng->SampleWithoutReplacement(all.size(), want);
  std::sort(picks.begin(), picks.end());  // stable evaluation order
  std::vector<traj::IncompleteTrajectory> pool;
  pool.reserve(want);
  for (size_t index : picks) pool.push_back(*all[index]);
  return pool;
}

ServerRunState FederatedTrainer::CaptureState(int round,
                                              const FederatedRunResult& result) {
  ServerRunState state;
  state.round = round;
  state.rng_state = rng_.SerializeState();
  state.fault_rng_state = fault_rng_.SerializeState();
  state.comm = result.comm;
  state.faults = result.faults;
  // Float64 on purpose: the FL wire format is float32, but aggregation
  // runs in Scalar (double); a rounded restore would diverge bitwise.
  state.global_params_blob = nn::SerializeCheckpoint(
      global_model_->params(), nn::CheckpointDtype::kFloat64);
  state.optimizer_blobs.reserve(client_optimizers_.size());
  for (const auto& optimizer : client_optimizers_) {
    state.optimizer_blobs.push_back(optimizer->SerializeState());
  }
  state.reputation_blob = book_ ? book_->Serialize() : std::string();
  state.monitor_blob = monitor_.SerializeState();
  state.escalated = escalated_;
  state.net_rng_state = net_rng_.SerializeState();
  state.adversary_blob = adversary_ ? adversary_->SerializeState() : std::string();
  state.normbound_blob = EncodeNormWindow(normbound_window_);
  return state;
}

Status FederatedTrainer::RestoreFromState(const ServerRunState& state,
                                          bool restore_reputation) {
  if (state.optimizer_blobs.size() != client_optimizers_.size()) {
    return Status::InvalidArgument(
        "snapshot has optimizer state for " +
        std::to_string(state.optimizer_blobs.size()) + " clients, trainer has " +
        std::to_string(client_optimizers_.size()));
  }
  LIGHTTR_RETURN_NOT_OK(rng_.DeserializeState(state.rng_state));
  LIGHTTR_RETURN_NOT_OK(fault_rng_.DeserializeState(state.fault_rng_state));
  // The channel stream rewinds with the round (pre-v3 snapshots carry
  // none — the freshly seeded stream stands in): both resume and
  // rollback replay the same network weather, which the lossy-channel
  // determinism contract requires.
  if (!state.net_rng_state.empty()) {
    LIGHTTR_RETURN_NOT_OK(net_rng_.DeserializeState(state.net_rng_state));
  }
  // ParseCheckpoint rejects non-finite payloads, so a poisoned snapshot
  // can never silently install a NaN/Inf global model.
  LIGHTTR_RETURN_NOT_OK(
      nn::ParseCheckpoint(state.global_params_blob, &global_model_->params()));
  for (size_t i = 0; i < client_optimizers_.size(); ++i) {
    LIGHTTR_RETURN_NOT_OK(
        client_optimizers_[i]->DeserializeState(state.optimizer_blobs[i]));
  }
  // The monitor's rolling windows always come back: a rollback must
  // undo the norms the bad round banked.
  if (!state.monitor_blob.empty()) {
    LIGHTTR_RETURN_NOT_OK(monitor_.DeserializeState(state.monitor_blob));
  }
  // The adversary stream and the norm-bound window rewind with the
  // round too (pre-v5 snapshots carry neither — the fresh state stands
  // in): a rollback or resume must replay the identical attack weather
  // and clip against the identical bound, or bitwise determinism across
  // crash/resume breaks.
  if (adversary_ != nullptr && !state.adversary_blob.empty()) {
    LIGHTTR_RETURN_NOT_OK(adversary_->DeserializeState(state.adversary_blob));
  }
  LIGHTTR_RETURN_NOT_OK(
      DecodeNormWindow(state.normbound_blob, &normbound_window_));
  if (restore_reputation) {
    // Cross-process resume: the ledger and the escalation latch come
    // back too. A rollback deliberately skips this branch — offenders
    // stay remembered and escalation stays armed, which is exactly why
    // the replay can end differently.
    if (book_ != nullptr && !state.reputation_blob.empty()) {
      LIGHTTR_RETURN_NOT_OK(book_->Deserialize(state.reputation_blob));
    }
    escalated_ = state.escalated;
  }
  return Status::Ok();
}

void FederatedTrainer::AssignHealingCounters(FaultStats* faults) const {
  faults->outlier_uploads = outlier_uploads_;
  faults->diverged_rounds = diverged_rounds_;
  faults->rollbacks = rollbacks_;
  faults->quarantine_events = quarantine_events_;
  faults->parole_events = parole_events_;
  faults->quarantined_skips = quarantined_skips_;
  // The storage counter rides along: like the healing counters it is a
  // lifetime trainer member, so a rollback-restored FaultStats must be
  // refreshed with the current value rather than the anchor's.
  faults->storage_write_failures = storage_write_failures_;
}

FileSystem* FederatedTrainer::DurableFs() const {
  return options_.durability.fs != nullptr ? options_.durability.fs
                                           : RealFileSystemInstance();
}

void FederatedTrainer::SweepTempFiles() {
  FileSystem* fs = DurableFs();
  Result<std::vector<std::string>> names = fs->ListDir(options_.durability.dir);
  if (!names.ok()) return;  // no directory yet: nothing to sweep
  for (const std::string& name : names.value()) {
    if (name.size() > 4 && name.compare(name.size() - 4, 4, ".tmp") == 0) {
      // Best-effort: a temp that cannot be removed is re-swept next run.
      (void)fs->Remove(options_.durability.dir + "/" + name);
    }
  }
}

Status FederatedTrainer::SaveSnapshot(int round,
                                      const FederatedRunResult& result) {
  const DurabilityConfig& durability = options_.durability;
  const ServerRunState state = CaptureState(round, result);
  const std::string path = SnapshotPath(durability.dir, round);
  FileSystem* fs = DurableFs();
  if (durability.crash_point == CrashPoint::kMidSave &&
      durability.crash_round == round) {
    // Simulate dying inside WriteFileAtomic: the temp file holds half
    // the bytes, the rename never happened, the previous snapshot set
    // is untouched.
    (void)fs->CreateDirs(durability.dir);  // best-effort, like a dying writer
    const std::string encoded = EncodeRunState(state);
    const Status half =
        fs->AppendToFile(path + ".tmp", encoded.substr(0, encoded.size() / 2));
    // A storage fault can hit even the dying write; count it so the
    // attribution ledger stays exact, then crash as scheduled.
    if (!half.ok()) ++storage_write_failures_;
    throw InjectedCrash{CrashPoint::kMidSave, round};
  }
  LIGHTTR_RETURN_NOT_OK(SaveRunState(fs, path, state));
  // The snapshot is the durability point: sync so a simulated power
  // loss cannot revert behind it (this also makes the journal records
  // up to this round crash-proof).
  LIGHTTR_RETURN_NOT_OK(fs->SyncAll());
  PruneSnapshots(fs, durability.dir, durability.keep_snapshots);
  return Status::Ok();
}

Status FederatedTrainer::ResumeFrom(const std::string& dir) {
  FileSystem* fs = DurableFs();
  Result<std::vector<int>> rounds = ListSnapshotRounds(fs, dir);
  if (!rounds.ok()) return rounds.status();
  if (rounds.value().empty()) {
    return Status::NotFound("no snapshots in " + dir);
  }
  const std::vector<int>& all = rounds.value();
  for (auto it = all.rbegin(); it != all.rend(); ++it) {
    const std::string path = SnapshotPath(dir, *it);
    Result<ServerRunState> loaded = LoadRunState(fs, path);
    if (!loaded.ok()) {
      std::fprintf(stderr,
                   "[lighttr] warning: snapshot %s rejected (%s); falling "
                   "back to the previous one\n",
                   path.c_str(), loaded.status().ToString().c_str());
      continue;
    }
    const ServerRunState& state = loaded.value();
    if (state.optimizer_blobs.size() != client_optimizers_.size()) {
      // A shape mismatch is a caller error (wrong trainer for this
      // directory), not snapshot corruption: fail hard, do not fall
      // back to an older snapshot that would mismatch identically.
      return Status::InvalidArgument(
          "snapshot has optimizer state for " +
          std::to_string(state.optimizer_blobs.size()) + " clients, trainer has " +
          std::to_string(client_optimizers_.size()));
    }
    const Status restored = RestoreFromState(state, /*restore_reputation=*/true);
    if (!restored.ok()) {
      // Includes non-finite-poisoned global models (ParseCheckpoint
      // refuses them): warn and fall back, same as a CRC failure.
      std::fprintf(stderr,
                   "[lighttr] warning: snapshot %s rejected (%s); falling "
                   "back to the previous one\n",
                   path.c_str(), restored.ToString().c_str());
      continue;
    }
    // Lifetime healing counters continue from where the snapshot left
    // off (they live in FaultStats so v1 snapshots restore them as 0).
    outlier_uploads_ = state.faults.outlier_uploads;
    diverged_rounds_ = state.faults.diverged_rounds;
    rollbacks_ = state.faults.rollbacks;
    quarantine_events_ = state.faults.quarantine_events;
    parole_events_ = state.faults.parole_events;
    quarantined_skips_ = state.faults.quarantined_skips;
    storage_write_failures_ = state.faults.storage_write_failures;
    start_round_ = state.round;
    resumed_round_ = state.round;
    resume_seed_ = FederatedRunResult{};
    resume_seed_.comm = state.comm;
    resume_seed_.faults = state.faults;
    // Replay the journal up to the snapshot round; later records belong
    // to rounds that will be re-executed, so drop them from disk too
    // (otherwise the journal would hold duplicates after the rerun).
    Result<std::vector<RoundRecord>> journal = ReadJournal(fs, dir);
    if (!journal.ok()) return journal.status();
    for (const RoundRecord& record : journal.value()) {
      if (record.round <= state.round) resume_seed_.history.push_back(record);
    }
    if (resume_seed_.history.size() != journal.value().size()) {
      const Status rewritten = RewriteJournal(fs, dir, resume_seed_.history);
      if (!rewritten.ok()) {
        // A failed truncation would leave stale future-round records
        // that the rerun will duplicate. Count the storage fault and
        // retry once; if the filesystem still refuses, resume fails.
        ++storage_write_failures_;
        const Status retried = RewriteJournal(fs, dir, resume_seed_.history);
        if (!retried.ok()) {
          ++storage_write_failures_;
          return retried;
        }
      }
    }
    std::fprintf(stderr, "[lighttr] resumed from %s (round %d complete)\n",
                 path.c_str(), state.round);
    return Status::Ok();
  }
  return Status::IoError("every snapshot in " + dir +
                         " failed its integrity check");
}

FederatedRunResult FederatedTrainer::Run(LocalUpdateStrategy* strategy) {
  PlainLocalUpdate plain(options_.clip_norm);
  if (strategy == nullptr) strategy = &plain;

  const DurabilityConfig& durability = options_.durability;
  if (durability.enabled() && durability.resume && start_round_ == 0) {
    const Status resumed = ResumeFrom(durability.dir);
    if (!resumed.ok() && resumed.code() != StatusCode::kNotFound) {
      // Corruption of *every* snapshot (or a model/shape mismatch) is
      // not silently ignorable; a fresh start would quietly discard the
      // completed rounds the caller asked to keep.
      LIGHTTR_CHECK_OK(resumed);
    }
  }
  // Quiesce the directory: crashed writers (real or injected) may have
  // left `*.tmp` partials behind; readers ignore them, but they must
  // not accumulate forever.
  if (durability.enabled()) SweepTempFiles();

  const int num_clients = static_cast<int>(clients_->size());
  const int sampled = std::max(
      1, static_cast<int>(std::llround(options_.client_fraction *
                                       static_cast<double>(num_clients))));
  const int64_t wire_bytes = global_model_->params().WireBytes();
  const FaultModel fault_model(options_.faults);
  const bool inject = options_.faults.enabled();
  const bool healing = options_.healing.enabled;
  const bool use_transport = options_.transport.enabled;
  // Config-only conditionality (like `inject`): whether per-task
  // channel streams are forked depends on the fault *configuration*,
  // never on any outcome, so the fork sequence is fixed per round.
  const bool net_faulty = use_transport && options_.transport.faulty();
  // Sample the validation pool from a *copy* of the stream so Run() is
  // idempotent with respect to valid_rng_ (a resumed trainer draws the
  // identical pool without any state having been persisted for it).
  Rng valid_rng = valid_rng_;
  const std::vector<traj::IncompleteTrajectory> valid_pool =
      SampleValidationPool(/*max_trajectories=*/40, &valid_rng);

  FederatedRunResult result = resume_seed_;
  // Rollback anchor: the pre-round-1 (or just-resumed) state counts as
  // healthy, so even a round-1 divergence has somewhere to return to.
  if (healing) last_healthy_ = CaptureState(start_round_, result);
  for (int round = start_round_ + 1; round <= options_.rounds; ++round) {
    Stopwatch watch;
    RoundRecord record;
    record.round = round;
    // Effective tolerance for this round: once a divergence has been
    // seen, screening is forced on and plain-mean aggregation hardens
    // to the coordinate-wise median for the rest of the run.
    FaultToleranceConfig tolerance = options_.tolerance;
    if (escalated_) {
      tolerance.screen.enabled = true;
      if (tolerance.aggregator.policy == AggregatorPolicy::kMean) {
        tolerance.aggregator.policy = AggregatorPolicy::kMedian;
      }
      record.escalated = true;
    }
    // Algorithm 3 line 2: randomly select C clients. The RNG draw is
    // identical with healing on or off; quarantine then filters the
    // cohort without consuming randomness, so the fork sequence below
    // stays aligned with the reputation state (itself deterministic).
    std::vector<size_t> selected = rng_.SampleWithoutReplacement(
        static_cast<size_t>(num_clients), static_cast<size_t>(sampled));
    record.sampled = static_cast<int>(selected.size());
    if (healing && book_->QuarantinedCount() > 0) {
      auto keep_end = std::remove_if(
          selected.begin(), selected.end(), [&](size_t client_index) {
            return book_->IsQuarantined(static_cast<int>(client_index));
          });
      record.skipped_quarantined =
          static_cast<int>(selected.end() - keep_end);
      selected.erase(keep_end, selected.end());
      quarantined_skips_ += record.skipped_quarantined;
    }

    // Lines 3-10: download, local training, upload — now with faults,
    // run as one pool task per selected client. Every RNG fork happens
    // here, on the coordinating thread, in canonical selection order;
    // each fork is unconditional given the *config* (never conditional
    // on another client's fault outcome), so the streams — and thus the
    // results — are identical for every thread count.
    const std::string global_blob = global_model_->params().Serialize();
    const std::vector<nn::Scalar> global_flat =
        global_model_->params().Flatten();
    // The round's pull reply is identical for every client: encode the
    // frame once on the coordinating thread and share it read-only.
    std::string pull_reply_frame;
    if (use_transport) {
      transport::ModelPullReply reply;
      reply.round = round;
      reply.model_blob = global_blob;
      pull_reply_frame =
          transport::EncodeFrame(transport::FrameType::kModelPullReply,
                                 transport::EncodeModelPullReply(reply));
    }
    // Adversary prologue (coordinating thread): resample any colluding
    // drift direction for this round before per-attacker streams fork.
    const bool attack_round =
        adversary_ != nullptr && adversary_->ActiveInRound(round);
    if (adversary_ != nullptr) adversary_->BeginRound(round, global_flat.size());
    std::vector<ClientTask> tasks;
    tasks.reserve(selected.size());
    for (size_t client_index : selected) {
      ClientTask task;
      task.client_index = client_index;
      task.update_rng = rng_.Fork();
      if (options_.privacy.enabled()) task.noise_rng = rng_.Fork();
      if (inject) task.fault_rng = fault_rng_.Fork();
      if (net_faulty) task.net_rng = net_rng_.Fork();
      if (attack_round &&
          options_.adversary.IsAttacker(static_cast<int>(client_index))) {
        // Attacker membership is pure config + round number — never an
        // outcome — so the fork sequence stays fixed per round.
        task.adv_rng = adversary_->ForkStream();
        task.poison = true;
      }
      tasks.push_back(std::move(task));
    }

    std::vector<ClientSlot> slots(tasks.size());
    // Each worker owns exactly one pre-sized slot: tasks[t]/slots[t].
    pool_.ParallelFor(tasks.size(), [&](size_t t) {  // lint: shared-state(slots)
      ClientTask& task = tasks[t];
      ClientSlot& slot = slots[t];
      const size_t client_index = task.client_index;
      // Contact the client; a dropout burns one attempt of the retry
      // budget and a simulated backoff delay before the next attempt.
      FaultDraw draw;
      for (int attempt = 0;; ++attempt) {
        ++slot.attempts;  // each attempt (re)sends the global model
        if (inject) draw = fault_model.Draw(&task.fault_rng);
        if (draw.type != FaultType::kDropout) {
          slot.contacted = true;
          break;
        }
        if (attempt >= tolerance.retry.max_retries) break;
        ++slot.retries;
        slot.backoff_s +=
            BackoffDelaySeconds(tolerance.retry, attempt, &task.fault_rng);
      }
      if (!slot.contacted) return;

      RecoveryModel* client = client_models_[client_index].get();
      // The client's link for this round: both channel directions plus
      // the server endpoint (dedup + the shared pull-reply frame). All
      // state is task-private, so links run concurrently unshared.
      std::optional<transport::ReliableLink> link;
      if (use_transport) {
        link.emplace(
            options_.transport.LinkConfig(static_cast<int>(client_index)),
            options_.transport.retry, round, static_cast<int>(client_index),
            &pull_reply_frame, net_faulty ? &task.net_rng : nullptr);
        Result<std::string> blob = link->PullModelBlob();
        if (!blob.ok()) {
          // The link is down before the client ever saw the model:
          // charged to the network, not the client.
          slot.net_lost = true;
          slot.link = link->stats();
          return;
        }
        LIGHTTR_CHECK_OK(client->params().Deserialize(blob.value()));
      } else {
        LIGHTTR_CHECK_OK(client->params().Deserialize(global_blob));
      }
      slot.loss = strategy->Update(static_cast<int>(client_index), client,
                                   client_optimizers_[client_index].get(),
                                   (*clients_)[client_index],
                                   options_.local_epochs, &task.update_rng);
      slot.trained = true;

      if (draw.type == FaultType::kStraggler) {
        // The client computed the update but missed the server's round
        // deadline; the server never receives the upload.
        slot.straggler = true;
        if (use_transport) slot.link = link->stats();
        return;
      }

      std::vector<nn::Scalar> upload = client->params().Flatten();
      if (options_.privacy.enabled()) {
        upload = PrivatizeUpload(upload, global_flat, options_.privacy,
                                 &task.noise_rng);
      }
      if (task.poison) {
        // The compromised client rewrites its upload after local
        // training and privacy but before quantization, wire faults,
        // and screening: the poison traverses the identical path an
        // honest update takes, so every defense sees it where a real
        // deployment would. Poison() is const — safe from workers.
        slot.poisoned = adversary_->Poison(global_flat, &upload, &task.adv_rng);
      }
      if (use_transport) {
        transport::UpdatePush push;
        push.round = round;
        push.client_id = static_cast<int>(client_index);
        push.msg_id =
            transport::PushMsgId(round, static_cast<int>(client_index));
        push.train_loss = slot.loss;
        if (options_.quantize_uploads &&
            draw.type != FaultType::kCorruption) {
          push.kind = transport::PayloadKind::kQuantizedInt8;
          push.quantized = QuantizeFlat(upload);
        } else {
          if (options_.quantize_uploads) {
            // The client still quantizes; the injected fault then
            // damages the *decoded* scalars, so the frame stays
            // CRC-valid and screening (not the CRC) catches it —
            // client-behaviour corruption must keep scoring against
            // the client, unlike wire damage.
            upload = DequantizeFlat(QuantizeFlat(upload));
          }
          if (draw.type == FaultType::kCorruption) {
            FaultModel::Corrupt(draw.corruption, &task.fault_rng, &upload);
          }
          push.kind = transport::PayloadKind::kRawF64;
          push.raw = upload;
        }
        Result<std::vector<double>> received = link->PushUpdate(push);
        slot.link = link->stats();
        if (!received.ok()) {
          slot.net_lost = true;
          return;
        }
        // Aggregation consumes what the SERVER received (dequantized
        // server-side when the push was quantized).
        upload = std::move(received).value();
      } else {
        if (options_.quantize_uploads) {
          const QuantizedBlob blob = QuantizeFlat(upload);
          slot.uplink_bytes = blob.WireBytes();
          upload = DequantizeFlat(blob);
        } else {
          slot.uplink_bytes = wire_bytes;
        }
        if (draw.type == FaultType::kCorruption) {
          // Damage happens on the wire, after the client's privacy and
          // quantization steps and after uplink accounting.
          FaultModel::Corrupt(draw.corruption, &task.fault_rng, &upload);
        }
      }

      const Status screen =
          ScreenUpload(&upload, global_flat, tolerance.screen, &slot.clipped);
      if (!screen.ok()) {
        slot.rejected = true;
        // InvalidArgument = non-finite scalars; OutOfRange = norm bound.
        slot.corrupt = screen.code() == StatusCode::kInvalidArgument;
        return;
      }
      // Computed here (in parallel) for the health monitor; per-slot,
      // so thread count cannot reorder any accumulation.
      slot.delta_norm = DeltaNorm(upload, global_flat);
      slot.upload = std::move(upload);
    });

    // Fold the slots in canonical selection order. All floating-point
    // accumulation (losses, backoff seconds) happens here, on one
    // thread, in one fixed order.
    std::vector<std::vector<nn::Scalar>> uploads;
    uploads.reserve(slots.size());
    std::vector<UpdateObservation> observations;  // canonical order
    if (healing) observations.reserve(slots.size());
    // uploads[u] -> its observation index / accepted delta norm, so the
    // Byzantine aggregator's per-upload suspicion flags can be mapped
    // back onto reputation evidence and the norm-bound window.
    std::vector<size_t> upload_obs;
    std::vector<double> upload_norms;
    double loss_sum = 0.0;
    int loss_count = 0;
    for (size_t s = 0; s < slots.size(); ++s) {
      ClientSlot& slot = slots[s];
      if (use_transport) {
        // Exact accounting measured from encoded frames: every
        // transmitted copy counts — retransmissions included.
        result.comm.bytes_downlink += slot.link.downlink_bytes;
        result.comm.bytes_uplink += slot.link.uplink_bytes;
        result.comm.messages +=
            slot.link.uplink_frames + slot.link.downlink_frames;
        record.net_retries += slot.link.retries;
        record.net_timeouts += slot.link.timeouts;
        record.net_crc_drops += slot.link.crc_drops;
        record.net_dedup_drops += slot.link.dedup_drops;
        record.net_late_drops += slot.link.late_drops;
        result.faults.simulated_backoff_s +=
            slot.backoff_s + slot.link.backoff_s;
      } else {
        // Legacy estimate: one model-size message per contact attempt.
        result.comm.bytes_downlink += wire_bytes * slot.attempts;
        result.comm.messages += slot.attempts;
        result.faults.simulated_backoff_s += slot.backoff_s;
      }
      record.retries += slot.retries;
      if (!slot.contacted) {
        ++record.drops;
        continue;
      }
      if (slot.trained) {
        loss_sum += slot.loss;
        ++loss_count;
      }
      // Ground truth, counted even when the wire later eats the upload:
      // the adversary DID rewrite it.
      if (slot.poisoned) ++record.poisoned_uploads;
      if (slot.net_lost) {
        // Lost to the wire, not to the client: never a drop, straggler,
        // or reputation observation.
        ++record.net_lost;
        continue;
      }
      if (slot.straggler) {
        ++record.stragglers;
        continue;
      }
      if (!use_transport) {
        result.comm.bytes_uplink += slot.uplink_bytes;
        ++result.comm.messages;
      }
      // Every upload that reached screening is evidence for the
      // reputation ledger — including clean ones, which decay scores.
      if (healing) {
        UpdateObservation obs;
        obs.client_index = static_cast<int>(tasks[s].client_index);
        obs.corrupt = slot.corrupt;
        obs.norm_rejected = slot.rejected && !slot.corrupt;
        obs.accepted = !slot.rejected;
        obs.delta_norm = slot.delta_norm;
        observations.push_back(obs);
      }
      if (slot.rejected) {
        ++record.rejected_uploads;
        continue;
      }
      if (slot.clipped) ++result.faults.clipped_uploads;
      // The adaptive adversary eavesdrops on accepted honest norms (the
      // simulator grants it a global view) to size its stealth attacks.
      // Coordinating thread, canonical order: deterministic.
      if (adversary_ != nullptr &&
          !options_.adversary.IsAttacker(
              static_cast<int>(tasks[s].client_index))) {
        adversary_->ObserveHonestNorm(slot.delta_norm);
      }
      if (healing) upload_obs.push_back(observations.size() - 1);
      upload_norms.push_back(slot.delta_norm);
      uploads.push_back(std::move(slot.upload));
    }
    record.reporting = static_cast<int>(uploads.size());
    // A "mid-round" crash lands after local work but before the round
    // commits anything: on resume the whole round re-executes.
    MaybeInjectCrash(durability, CrashPoint::kMidRound, round);

    // Line 11: theta_s <- aggregate(theta_ci), behind a quorum gate. A
    // round that loses too many clients keeps the previous global model
    // instead of averaging a tiny (or empty) cohort.
    const int quorum_need = std::max(
        1, static_cast<int>(std::ceil(tolerance.quorum_fraction *
                                      static_cast<double>(record.sampled))));
    record.quorum_met = record.reporting >= quorum_need;
    if (record.quorum_met) {
      // kNormBound clips against the rolling median accepted norm; an
      // empty window (the first rounds) leaves the bound unarmed.
      const double norm_bound =
          tolerance.aggregator.policy == AggregatorPolicy::kNormBound
              ? Median(normbound_window_)
              : 0.0;
      std::vector<uint8_t> suspected;
      Result<std::vector<nn::Scalar>> aggregate = AggregateFlat(
          uploads, tolerance.aggregator, &global_flat, norm_bound, &suspected);
      if (aggregate.ok()) {
        global_model_->params().AssignFlat(aggregate.value());
        for (size_t u = 0; u < suspected.size(); ++u) {
          if (suspected[u] != 0) {
            // Map the aggregator's verdict back onto the reputation
            // evidence (same canonical order the uploads were folded in)
            // so Observe can score it below.
            ++record.suspected_uploads;
            if (healing) observations[upload_obs[u]].suspected = true;
          } else if (tolerance.aggregator.policy ==
                     AggregatorPolicy::kNormBound) {
            // Only unsuspected accepted norms teach the clip bound; a
            // norm-matched poison must not drag the median upward.
            normbound_window_.push_back(upload_norms[u]);
          }
        }
        if (normbound_window_.size() > kNormBoundWindow) {
          normbound_window_.erase(
              normbound_window_.begin(),
              normbound_window_.end() -
                  static_cast<std::ptrdiff_t>(kNormBoundWindow));
        }
      } else {
        record.quorum_met = false;  // degrade: keep the previous model
      }
    }
    if (!record.quorum_met) ++result.faults.quorum_misses;
    ++result.comm.rounds;

    result.faults.drops += record.drops;
    result.faults.retries += record.retries;
    result.faults.stragglers += record.stragglers;
    result.faults.rejected_uploads += record.rejected_uploads;
    result.faults.sampled_clients += record.sampled;
    result.faults.reporting_clients += record.reporting;
    result.faults.net_retries += record.net_retries;
    result.faults.net_timeouts += record.net_timeouts;
    result.faults.net_crc_drops += record.net_crc_drops;
    result.faults.net_dedup_drops += record.net_dedup_drops;
    result.faults.net_late_drops += record.net_late_drops;
    result.faults.net_lost += record.net_lost;
    result.faults.poisoned_uploads += record.poisoned_uploads;
    result.faults.suspected_uploads += record.suspected_uploads;
    // Assignment, not +=: the member is already a lifetime total (and
    // failures during THIS round's commit below only surface next
    // round, or in the final result assignment after the loop).
    result.faults.storage_write_failures = storage_write_failures_;

    // Telemetry: validation accuracy + loss of the (possibly kept)
    // global model over the run-level unbiased validation pool.
    record.mean_train_loss =
        loss_count > 0 ? loss_sum / static_cast<double>(loss_count) : 0.0;
    record.global_valid_accuracy =
        EvaluateSegmentAccuracy(global_model_.get(), valid_pool);
    record.valid_loss = EvaluateMeanLoss(global_model_.get(), valid_pool);

    // Self-healing: judge the round, book the evidence, and on a
    // diverged verdict roll back to the last healthy state — all on
    // the coordinating thread, before anything is journaled.
    if (healing) {
      RoundHealthReport report = monitor_.Judge(
          &observations, global_model_->params().Flatten(), record.valid_loss);
      record.verdict = static_cast<int>(report.verdict);
      record.outlier_uploads = report.outlier_uploads;
      outlier_uploads_ += report.outlier_uploads;
      for (const UpdateObservation& obs : observations) {
        if (book_->Observe(obs.client_index, obs.corrupt, obs.norm_rejected,
                           obs.outlier, obs.suspected)) {
          ++quarantine_events_;
        }
      }
      if (report.verdict == HealthVerdict::kDiverged) {
        ++diverged_rounds_;
        escalated_ = true;
        const int anchor = last_healthy_->round;
        std::fprintf(stderr,
                     "[lighttr] round %d diverged (%s%s%s); %s round %d\n",
                     round, report.global_nonfinite ? "non-finite model " : "",
                     report.loss_nonfinite ? "non-finite loss " : "",
                     report.loss_spike ? "validation-loss spike" : "",
                     rollbacks_ < options_.healing.max_rollbacks
                         ? "rolling back to"
                         : "rollback budget exhausted; stopping at",
                     anchor);
        if (rollbacks_ < options_.healing.max_rollbacks) {
          ++rollbacks_;
          LIGHTTR_CHECK_OK(
              RestoreFromState(*last_healthy_, /*restore_reputation=*/false));
          result.comm = last_healthy_->comm;
          result.faults = last_healthy_->faults;
          AssignHealingCounters(&result.faults);
          // The diverged round is neither journaled nor recorded: it
          // re-executes (with escalation and the updated ledger) as if
          // it never happened.
          round = anchor;
          continue;
        }
        // Budget exhausted: park the run at its last healthy state so
        // the caller still gets a finite model.
        result.gave_up = true;
        LIGHTTR_CHECK_OK(
            RestoreFromState(*last_healthy_, /*restore_reputation=*/false));
        result.comm = last_healthy_->comm;
        result.faults = last_healthy_->faults;
        AssignHealingCounters(&result.faults);
        break;
      }
      // Committed round: advance quarantine clocks (the quarantining
      // round's tick counts toward parole).
      parole_events_ += book_->Tick();
      record.quarantined = book_->QuarantinedCount();
      AssignHealingCounters(&result.faults);
      last_healthy_ = CaptureState(round, result);
    }
    record.wall_seconds = watch.ElapsedSeconds();
    record.storage_write_failures = static_cast<int>(storage_write_failures_);
    result.history.push_back(record);

    if (durability.enabled()) {
      // Journal first, snapshot second: a crash between the two leaves
      // a journal record newer than any snapshot, which ResumeFrom
      // truncates before re-executing the round.
      //
      // Persistence failures here are survivable, not fatal: the round
      // already committed in memory and the model is untouched, so the
      // run continues with degraded durability coverage and the failure
      // attributed to the storage counter. (A real deployment pages an
      // operator; aborting training over a full disk would be worse.)
      const Status journaled = AppendJournalRecord(DurableFs(),
                                                   durability.dir, record);
      if (!journaled.ok()) ++storage_write_failures_;
      const bool snapshot_due = round % durability.snapshot_every == 0 ||
                                round == options_.rounds;
      if (snapshot_due) {
        MaybeInjectCrash(durability, CrashPoint::kBeforeSave, round);
        // Refresh first so the snapshot carries any journal failure
        // just counted (resume must restore an exact ledger).
        result.faults.storage_write_failures = storage_write_failures_;
        const Status saved = SaveSnapshot(round, result);
        if (!saved.ok()) ++storage_write_failures_;
        MaybeInjectCrash(durability, CrashPoint::kAfterSave, round);
      }
    }
  }
  // Late storage failures (this loop's final journal/snapshot writes)
  // still reach the caller's telemetry.
  result.faults.storage_write_failures = storage_write_failures_;
  start_round_ = 0;
  resume_seed_ = FederatedRunResult{};
  return result;
}

}  // namespace lighttr::fl
