// Communication accounting for the federated simulator (paper Sec. V-B3
// ties communication cost to parameter count; we record exact serialized
// bytes per round and direction).
#ifndef LIGHTTR_FL_COMM_STATS_H_
#define LIGHTTR_FL_COMM_STATS_H_

#include <cstdint>

namespace lighttr::fl {

/// Accumulated fault-tolerance telemetry of one federated run: what the
/// fault layer injected and what the server did about it.
struct FaultStats {
  int64_t drops = 0;             // contacts that never reported (after retries)
  int64_t retries = 0;           // re-contact attempts for dropped clients
  int64_t stragglers = 0;        // clients cut off by the round deadline
  int64_t rejected_uploads = 0;  // uploads screened out (non-finite / norm)
  int64_t clipped_uploads = 0;   // uploads norm-clipped but kept
  int64_t quorum_misses = 0;     // rounds that kept the previous model
  int64_t sampled_clients = 0;   // sum over rounds of cohort size
  int64_t reporting_clients = 0; // sum over rounds of effective cohort size
  double simulated_backoff_s = 0.0;  // simulated seconds spent backing off
  // Self-healing telemetry (fl/health + fl/reputation); all zero when
  // the health layer is disabled.
  int64_t outlier_uploads = 0;    // accepted uploads flagged as norm outliers
  int64_t diverged_rounds = 0;    // rounds the monitor judged diverged
  int64_t rollbacks = 0;          // rollbacks to the last healthy state
  int64_t quarantine_events = 0;  // clients entering quarantine
  int64_t parole_events = 0;      // clients released from quarantine
  int64_t quarantined_skips = 0;  // sampled slots skipped due to quarantine
  // Adversary telemetry (fl/adversary + the Byzantine aggregators).
  // `poisoned_uploads` counts uploads the injected adversary actually
  // rewrote (ground truth, zero in production); `suspected_uploads`
  // counts uploads the Byzantine aggregator flagged as probable poison
  // (the defense's claim). Comparing the two is the attribution story.
  int64_t poisoned_uploads = 0;
  int64_t suspected_uploads = 0;
  // Wire-transport telemetry (fl/transport): what the network did to
  // frames in flight. All zero with transport disabled or a clean
  // channel. These faults are attributed to the NETWORK — they never
  // touch a client's reputation.
  int64_t net_retries = 0;     // request re-sends after unusable exchanges
  int64_t net_timeouts = 0;    // exchanges that produced no usable response
  int64_t net_crc_drops = 0;   // frames discarded (CRC/decode/misroute)
  int64_t net_dedup_drops = 0; // duplicate pushes absorbed by server dedup
  int64_t net_late_drops = 0;  // frames discarded for missing the deadline
  int64_t net_lost = 0;        // client-rounds lost to a dead link
  // Storage telemetry (common/env): persistence calls (journal append,
  // snapshot write) that failed at the filesystem. Training continues —
  // the model is unaffected — but durability coverage degrades, so the
  // count is surfaced rather than swallowed. Attributed to STORAGE:
  // never to the network or to client reputation.
  int64_t storage_write_failures = 0;

  /// Mean fraction of each round's cohort that actually reported.
  double MeanCohortFraction() const {
    return sampled_clients > 0 ? static_cast<double>(reporting_clients) /
                                     static_cast<double>(sampled_clients)
                               : 1.0;
  }
};

/// Per-round telemetry (drives the convergence analysis of Fig. 5 and
/// the resilience curves of bench_fault_tolerance). One journal line
/// per record is persisted by the durability layer (fl/run_state) so a
/// resumed run can replay its history.
struct RoundRecord {
  int round = 0;
  double mean_train_loss = 0.0;
  double global_valid_accuracy = 0.0;
  double wall_seconds = 0.0;
  // Fault telemetry for this round.
  int sampled = 0;           // cohort size selected by Algorithm 3 line 2
  int reporting = 0;         // uploads that survived faults + screening
  int drops = 0;             // clients lost after exhausting retries
  int retries = 0;           // re-contact attempts this round
  int stragglers = 0;        // clients cut off by the deadline
  int rejected_uploads = 0;  // uploads discarded by screening
  bool quorum_met = true;    // false -> previous global model kept
  // Self-healing telemetry; defaults describe a run with --health off.
  double valid_loss = 0.0;       // global model's validation loss
  int verdict = 0;               // fl::HealthVerdict as int (0=healthy)
  int outlier_uploads = 0;       // accepted uploads flagged as outliers
  int quarantined = 0;           // clients in quarantine after this round
  int skipped_quarantined = 0;   // sampled slots skipped (quarantine)
  bool escalated = false;        // round ran under escalated screening
  // Adversary telemetry for this round (see FaultStats).
  int poisoned_uploads = 0;      // uploads the injected adversary rewrote
  int suspected_uploads = 0;     // uploads the Byzantine aggregator flagged
  // Wire-transport telemetry for this round (see FaultStats).
  int net_retries = 0;
  int net_timeouts = 0;
  int net_crc_drops = 0;
  int net_dedup_drops = 0;
  int net_late_drops = 0;
  int net_lost = 0;              // contacted clients lost to network faults
  // Storage telemetry: lifetime storage_write_failures at the time this
  // round committed (a running total, not a per-round delta, so a
  // journal line lost to the very fault it would have recorded still
  // shows up as a jump in the next surviving line).
  int storage_write_failures = 0;
};

/// Accumulated transport statistics of one federated run. With the wire
/// transport enabled (the default) every figure is *measured* from
/// encoded frame lengths — retransmissions and channel-injected
/// duplicates included; with transport disabled they fall back to the
/// legacy per-contact estimate (kept as the bench baseline).
struct CommStats {
  int64_t bytes_downlink = 0;  // server -> clients
  int64_t bytes_uplink = 0;    // clients -> server
  int64_t messages = 0;
  int64_t rounds = 0;

  int64_t TotalBytes() const { return bytes_downlink + bytes_uplink; }

  /// Transfer time under a simple bandwidth model (e.g., 1 Gbps -> pass
  /// 125e6 bytes/s), plus per-message latency.
  double SimulatedSeconds(double bytes_per_second,
                          double latency_s_per_message) const {
    return static_cast<double>(TotalBytes()) / bytes_per_second +
           static_cast<double>(messages) * latency_s_per_message;
  }
};

}  // namespace lighttr::fl

#endif  // LIGHTTR_FL_COMM_STATS_H_
