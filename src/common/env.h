// Pluggable filesystem environment: every byte the library persists
// flows through a FileSystem, so the whole durability stack (atomic
// checkpoint writes, run-state snapshots, the round journal) can be
// pointed at a deterministic fault-injecting filesystem with ONE knob
// (DurabilityConfig::fs) instead of the real disk.
//
// Two implementations ship:
//   - RealFileSystem: the production backend (std::filesystem + streams,
//     moved here from common/file_util). common/env is the ONLY place in
//     src/ allowed to touch raw file APIs — the no-direct-persistence
//     lint rule bans std::ofstream/fopen and std::filesystem mutation
//     everywhere else under src/.
//   - FaultyFileSystem: a deterministic in-memory filesystem with a
//     seeded fault model (ENOSPC, torn appends, rename failures, read
//     bit-rot, leftover `.tmp` litter) and simulated fsync/crash
//     semantics (unsynced data can be lost at a crash). Every injected
//     fault is counted, so chaos invariants can check that what the
//     filesystem injected is exactly what the trainer attributed.
//
// Failure-path hygiene contract (both implementations): WriteFileAtomic
// never leaves its own `<path>.tmp` behind — the temp is removed on a
// failed write AND on a failed rename — and AppendToFile reports short
// writes as kIoError, never as success.
#ifndef LIGHTTR_COMMON_ENV_H_
#define LIGHTTR_COMMON_ENV_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"

namespace lighttr {

/// Abstract persistence environment. Implementations must behave as if
/// every operation is atomic with respect to concurrent readers of the
/// same FileSystem object (the durability layer only issues IO from the
/// coordinating thread, but sanitizer builds still exercise the locks).
class FileSystem {
 public:
  virtual ~FileSystem() = default;

  /// Writes `contents` to `path` all-or-nothing: readers observe either
  /// the old contents or the new, never a tear. Any stale `<path>.tmp`
  /// from a previous crashed writer is clobbered/cleaned in the
  /// process; on failure no new `<path>.tmp` survives.
  [[nodiscard]] virtual Status WriteFileAtomic(const std::string& path,
                                               const std::string& contents) = 0;

  /// Appends `contents` to `path`, creating it if missing. NOT atomic:
  /// a crash (or an injected fault) can leave a torn tail, which is why
  /// journal records carry per-line CRCs. A short write is kIoError.
  [[nodiscard]] virtual Status AppendToFile(const std::string& path,
                                            const std::string& contents) = 0;

  /// Reads the whole file at `path`.
  [[nodiscard]] virtual Result<std::string> ReadFile(const std::string& path) = 0;

  /// Lists the regular files directly inside `dir` (names only, sorted
  /// ascending). NotFound when `dir` does not exist.
  [[nodiscard]] virtual Result<std::vector<std::string>> ListDir(
      const std::string& dir) = 0;

  /// Removes the file at `path`. Removing a missing file is OK (the
  /// pruning paths are best-effort by design).
  [[nodiscard]] virtual Status Remove(const std::string& path) = 0;

  /// Creates `dir` and any missing parents.
  [[nodiscard]] virtual Status CreateDirs(const std::string& dir) = 0;

  /// True when a file or directory exists at `path`.
  virtual bool Exists(const std::string& path) = 0;

  /// Makes everything written so far durable across a (simulated)
  /// crash. The real backend treats stream close as durable enough and
  /// returns OK; the faulty backend promotes pending bytes so
  /// SimulateCrash can no longer revert them.
  [[nodiscard]] virtual Status SyncAll() = 0;
};

/// The process-wide real filesystem. The free functions in
/// common/file_util delegate here, so legacy callers keep working.
FileSystem* RealFileSystemInstance();

// ---------------------------------------------------------------------------
// Deterministic storage-fault injection.
// ---------------------------------------------------------------------------

/// Seeded per-operation fault probabilities for FaultyFileSystem. Every
/// rate is an independent Bernoulli draw consumed ONLY when its rate is
/// positive (config-only conditionality, the same rule the trainer's
/// RNG forks follow), so the fault schedule is a pure function of
/// (seed, operation sequence).
struct StorageFaultConfig {
  uint64_t seed = 0xF11E5EEDull;
  /// WriteFileAtomic / AppendToFile fails before any byte lands
  /// ("No space left on device").
  double enospc_rate = 0.0;
  /// AppendToFile writes only a random proper prefix, then reports
  /// kIoError (a short write must never look like success).
  double torn_append_rate = 0.0;
  /// WriteFileAtomic fails at the rename step; the target keeps its old
  /// contents and (hygiene) the temp file is cleaned up.
  double rename_fail_rate = 0.0;
  /// ReadFile returns the contents with one deterministic bit flipped
  /// (the stored bytes stay intact — read-path rot, not disk damage).
  double read_bitrot_rate = 0.0;
  /// A successful WriteFileAtomic leaves a stale `<path>.tmp` behind,
  /// simulating an earlier writer that crashed mid-write. Injected
  /// litter is tracked so invariants can tell it from a hygiene leak.
  double tmp_litter_rate = 0.0;
  /// When true, SimulateCrash reverts every file to its last synced
  /// contents (files never synced vanish). When false a crash is kind:
  /// everything already reached "disk".
  bool lose_unsynced_on_crash = false;

  bool enabled() const {
    return enospc_rate > 0.0 || torn_append_rate > 0.0 ||
           rename_fail_rate > 0.0 || read_bitrot_rate > 0.0 ||
           tmp_litter_rate > 0.0 || lose_unsynced_on_crash;
  }
};

/// Exact counts of what the fault layer injected; chaos invariants
/// reconcile these against what the trainer observed.
struct StorageFaultStats {
  int64_t enospc_failures = 0;   // writes/appends failed with ENOSPC
  int64_t torn_appends = 0;      // appends that wrote a proper prefix
  int64_t rename_failures = 0;   // atomic replaces failed at rename
  int64_t bitrot_reads = 0;      // reads returned a flipped bit
  int64_t tmp_litter_files = 0;  // stale .tmp files planted
  int64_t crash_reverted_files = 0;  // files rolled back at a crash
  int64_t crash_lost_files = 0;      // never-synced files lost at a crash

  /// Faults that surface as a failed write call (each failing call
  /// carries exactly one of these).
  int64_t WriteFaults() const {
    return enospc_failures + torn_appends + rename_failures;
  }
};

/// Deterministic in-memory filesystem with seeded fault injection and
/// simulated crash semantics. With a default (all-zero) config it is a
/// plain deterministic RAM disk, useful on its own for hermetic tests.
///
/// Thread safety: all operations lock one internal mutex. Determinism
/// across trainer thread counts holds because the durability layer
/// issues every operation from the coordinating thread in round order.
class FaultyFileSystem : public FileSystem {
 public:
  explicit FaultyFileSystem(const StorageFaultConfig& config = {});

  [[nodiscard]] Status WriteFileAtomic(const std::string& path,
                                       const std::string& contents) override;
  [[nodiscard]] Status AppendToFile(const std::string& path,
                                    const std::string& contents) override;
  [[nodiscard]] Result<std::string> ReadFile(const std::string& path) override;
  [[nodiscard]] Result<std::vector<std::string>> ListDir(
      const std::string& dir) override;
  [[nodiscard]] Status Remove(const std::string& path) override;
  [[nodiscard]] Status CreateDirs(const std::string& dir) override;
  bool Exists(const std::string& path) override;
  [[nodiscard]] Status SyncAll() override;

  /// Simulates a process+machine crash: with lose_unsynced_on_crash,
  /// every file reverts to its last SyncAll contents and never-synced
  /// files vanish; otherwise the visible state survives unchanged.
  void SimulateCrash();

  /// Snapshot of the injected-fault counters.
  StorageFaultStats stats() const;

  /// All existing file paths, sorted (for orphan-temp-file scans).
  std::vector<std::string> AllFiles() const;

  /// True when `path` is stale-.tmp litter planted by the fault layer
  /// (as opposed to a temp file leaked by a buggy writer).
  bool IsInjectedLitter(const std::string& path) const;

  /// Test hook: the next ReadFile of exactly `path` returns one flipped
  /// bit, independent of read_bitrot_rate (targeted corrupted-newest
  /// fallback tests need a deterministic victim).
  void InjectBitrotOnce(const std::string& path);

  /// Test-only planted bug: when set, a rename failure leaves the temp
  /// file behind instead of cleaning it — the hygiene regression the
  /// chaos orphan-temp invariant exists to catch.
  void set_leak_tmp_on_rename_failure(bool leak) {
    std::lock_guard<std::mutex> lock(mu_);
    leak_tmp_ = leak;
  }

  /// Pauses fault injection (no draws, nothing injected) so a harness
  /// can inspect or stage state without perturbing the fault stream.
  void set_faults_paused(bool paused);

 private:
  struct MemFile {
    std::string data;     // visible contents
    std::string synced;   // contents surviving a lossy crash
    bool ever_synced = false;
  };

  bool ParentExists(const std::string& path) const;  // callers hold mu_
  bool DrawFault(double rate);                       // callers hold mu_
  void CleanTemp(const std::string& path);           // callers hold mu_

  mutable std::mutex mu_;
  StorageFaultConfig config_;
  Rng rng_;
  std::map<std::string, MemFile> files_;
  std::set<std::string> dirs_;
  std::set<std::string> litter_;
  std::set<std::string> bitrot_once_;
  StorageFaultStats stats_;
  bool paused_ = false;
  bool leak_tmp_ = false;
};

}  // namespace lighttr

#endif  // LIGHTTR_COMMON_ENV_H_
