#include "traj/generator.h"

#include <algorithm>
#include <cmath>

#include "roadnet/shortest_path.h"

namespace lighttr::traj {

TrajectoryGenerator::TrajectoryGenerator(const roadnet::RoadNetwork& network)
    : network_(network) {
  LIGHTTR_CHECK(network.finalized());
  LIGHTTR_CHECK_GE(network.num_segments(), 1);
}

roadnet::VertexId TrajectoryGenerator::PickStartVertex(
    const GeneratorOptions& options, roadnet::VertexId home, Rng* rng) const {
  const int32_t n = network_.num_vertices();
  if (home < 0 || home >= n) {
    return static_cast<roadnet::VertexId>(rng->UniformInt(0, n - 1));
  }
  const geo::GeoPoint home_pos = network_.vertex(home).position;
  // Rejection-sample vertices near home; fall back to home itself.
  for (int attempt = 0; attempt < 64; ++attempt) {
    const auto v = static_cast<roadnet::VertexId>(rng->UniformInt(0, n - 1));
    if (geo::EquirectangularMeters(network_.vertex(v).position, home_pos) <=
        options.home_radius_m) {
      return v;
    }
  }
  return home;
}

Result<std::vector<roadnet::SegmentId>> TrajectoryGenerator::BuildRoute(
    roadnet::VertexId start, double min_length_m, Rng* rng) const {
  std::vector<roadnet::SegmentId> route;
  double total_m = 0.0;
  roadnet::VertexId cursor = start;
  const int32_t n = network_.num_vertices();

  for (int leg = 0; leg < 32 && total_m < min_length_m; ++leg) {
    // Prefer far-away destinations: long shortest-path legs make the
    // trajectory locally shortest between any two of its points, which
    // keeps the recovery problem well-posed (real trips behave the same
    // way — drivers rarely detour within a couple of kilometers).
    roadnet::VertexId target = roadnet::kInvalidVertex;
    double best_distance = -1.0;
    const geo::GeoPoint cursor_pos = network_.vertex(cursor).position;
    for (int probe = 0; probe < 8; ++probe) {
      const auto v = static_cast<roadnet::VertexId>(rng->UniformInt(0, n - 1));
      if (v == cursor) continue;
      const double d =
          geo::EquirectangularMeters(network_.vertex(v).position, cursor_pos);
      if (d > best_distance) {
        best_distance = d;
        target = v;
      }
    }
    if (target == roadnet::kInvalidVertex) continue;
    auto leg_route = roadnet::VertexRoute(network_, cursor, target);
    if (!leg_route.ok()) continue;  // unreachable target; try another
    for (roadnet::SegmentId e : leg_route.value()) {
      route.push_back(e);
      total_m += network_.segment(e).length_m;
    }
    cursor = target;
  }
  if (total_m < min_length_m) {
    return Status::FailedPrecondition(
        "network too small or disconnected for the requested route length");
  }
  return route;
}

Result<MatchedTrajectory> TrajectoryGenerator::Generate(
    const GeneratorOptions& options, roadnet::VertexId home, Rng* rng) const {
  LIGHTTR_CHECK(rng != nullptr);
  LIGHTTR_CHECK_GE(options.min_points, 2);
  LIGHTTR_CHECK_GE(options.max_points, options.min_points);
  LIGHTTR_CHECK_GT(options.epsilon_s, 0.0);
  LIGHTTR_CHECK_GT(options.speed_mps_min, 0.0);
  LIGHTTR_CHECK_GE(options.speed_mps_max, options.speed_mps_min);

  const int num_points = static_cast<int>(
      rng->UniformInt(options.min_points, options.max_points));
  const double cruise =
      rng->Uniform(options.speed_mps_min, options.speed_mps_max);
  // Budget route length for the worst-case jittered speed, plus slack.
  const double needed_m = cruise * (1.0 + options.speed_jitter) *
                              options.epsilon_s * (num_points - 1) +
                          50.0;

  const roadnet::VertexId start = PickStartVertex(options, home, rng);
  auto route_result = BuildRoute(start, needed_m, rng);
  if (!route_result.ok()) return route_result.status();
  const std::vector<roadnet::SegmentId>& route = route_result.value();

  // Cumulative length at the start of each route segment.
  std::vector<double> cum(route.size() + 1, 0.0);
  for (size_t i = 0; i < route.size(); ++i) {
    cum[i + 1] = cum[i] + network_.segment(route[i]).length_m;
  }

  MatchedTrajectory out;
  out.epsilon_s = options.epsilon_s;
  out.points.reserve(num_points);
  double travelled = 0.0;
  size_t seg_idx = 0;
  for (int k = 0; k < num_points; ++k) {
    if (k > 0) {
      const double step_speed =
          cruise * (1.0 + rng->Uniform(-options.speed_jitter,
                                       options.speed_jitter));
      travelled += step_speed * options.epsilon_s;
    }
    // Never run off the end of the route.
    travelled = std::min(travelled, cum.back() - 1e-6);
    while (seg_idx + 1 < route.size() && travelled >= cum[seg_idx + 1]) {
      ++seg_idx;
    }
    const roadnet::SegmentId seg = route[seg_idx];
    const double seg_len = network_.segment(seg).length_m;
    const double ratio =
        std::clamp((travelled - cum[seg_idx]) / seg_len, 0.0, 1.0);
    out.points.push_back(MatchedPoint{
        roadnet::PointPosition{seg, ratio}, k * options.epsilon_s, k});
  }
  return out;
}

}  // namespace lighttr::traj
