
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/checkpoint.cc" "src/nn/CMakeFiles/lighttr_nn.dir/checkpoint.cc.o" "gcc" "src/nn/CMakeFiles/lighttr_nn.dir/checkpoint.cc.o.d"
  "/root/repo/src/nn/flops.cc" "src/nn/CMakeFiles/lighttr_nn.dir/flops.cc.o" "gcc" "src/nn/CMakeFiles/lighttr_nn.dir/flops.cc.o.d"
  "/root/repo/src/nn/layers.cc" "src/nn/CMakeFiles/lighttr_nn.dir/layers.cc.o" "gcc" "src/nn/CMakeFiles/lighttr_nn.dir/layers.cc.o.d"
  "/root/repo/src/nn/losses.cc" "src/nn/CMakeFiles/lighttr_nn.dir/losses.cc.o" "gcc" "src/nn/CMakeFiles/lighttr_nn.dir/losses.cc.o.d"
  "/root/repo/src/nn/matrix.cc" "src/nn/CMakeFiles/lighttr_nn.dir/matrix.cc.o" "gcc" "src/nn/CMakeFiles/lighttr_nn.dir/matrix.cc.o.d"
  "/root/repo/src/nn/ops.cc" "src/nn/CMakeFiles/lighttr_nn.dir/ops.cc.o" "gcc" "src/nn/CMakeFiles/lighttr_nn.dir/ops.cc.o.d"
  "/root/repo/src/nn/optimizer.cc" "src/nn/CMakeFiles/lighttr_nn.dir/optimizer.cc.o" "gcc" "src/nn/CMakeFiles/lighttr_nn.dir/optimizer.cc.o.d"
  "/root/repo/src/nn/parameter.cc" "src/nn/CMakeFiles/lighttr_nn.dir/parameter.cc.o" "gcc" "src/nn/CMakeFiles/lighttr_nn.dir/parameter.cc.o.d"
  "/root/repo/src/nn/tensor.cc" "src/nn/CMakeFiles/lighttr_nn.dir/tensor.cc.o" "gcc" "src/nn/CMakeFiles/lighttr_nn.dir/tensor.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/lighttr_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
