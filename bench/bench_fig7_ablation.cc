// Reproduces paper Figure 7: ablation study of LightTR's components on
// both workloads (keep ratio 12.5%):
//   - w/o_FL   : no central server; clients train locally and exchange
//                parameters around a ring (CyclicExchangeTrainer);
//   - w/o_LS   : the lightweight ST-operator is replaced by the heavier
//                MTrajRec local model (teacher + meta training kept);
//   - w/o_Meta : meta-knowledge enhanced local-global training replaced
//                by plain FedAvg.
//
// Expected shape: full LightTR best; w/o_Meta degrades the most
// (meta-knowledge handles the Non-IID heterogeneity); w/o_LS close to
// LightTR but far more expensive.
#include <cstdio>

#include "bench/bench_output.h"
#include "common/table_printer.h"
#include "eval/harness.h"
#include "fl/cyclic_trainer.h"

namespace {

using namespace lighttr;

eval::RecoveryMetrics RunWithoutFl(
    const eval::ExperimentEnv& env,
    const std::vector<traj::ClientDataset>& clients,
    const eval::ExperimentScale& scale,
    const std::vector<traj::IncompleteTrajectory>& test) {
  fl::CyclicTrainerOptions options;
  options.rounds = scale.rounds;
  options.local_epochs = scale.local_epochs;
  options.learning_rate = 3e-3;
  options.seed = scale.seed;
  fl::CyclicExchangeTrainer trainer(
      baselines::MakeFactory(baselines::ModelKind::kLightTr, &env.encoder()),
      &clients, options);
  (void)trainer.Run();
  return eval::EvaluateRecovery(trainer.final_model(), env.network(), test);
}

eval::RecoveryMetrics RunWithoutLs(
    const eval::ExperimentEnv& env,
    const std::vector<traj::ClientDataset>& clients,
    const eval::ExperimentScale& scale,
    const std::vector<traj::IncompleteTrajectory>& test) {
  // MTrajRec as the local model, but keep teacher + meta training.
  const fl::ModelFactory factory =
      baselines::MakeFactory(baselines::ModelKind::kMTrajRec, &env.encoder());
  eval::MethodRunOptions options = eval::DefaultRunOptions(scale);
  auto teacher = core::TrainTeacher(factory, clients, options.teacher);
  core::MetaLocalUpdate strategy(teacher.get(), options.meta);
  fl::FederatedTrainer trainer(factory, &clients, options.fed);
  (void)trainer.Run(&strategy);
  return eval::EvaluateRecovery(trainer.global_model(), env.network(), test);
}

}  // namespace

int main() {
  const eval::ExperimentScale scale = eval::ExperimentScale::FromEnv();
  std::printf("Figure 7 reproduction (scale=%s)\n", scale.name.c_str());

  auto env = eval::ExperimentEnv::FromScale(scale);
  const std::vector<traj::WorkloadProfile> profiles = {
      eval::ScaledProfile(traj::GeolifeLikeProfile(), scale),
      eval::ScaledProfile(traj::TdriveLikeProfile(), scale)};

  TablePrinter table({"Dataset", "Variant", "Recall", "Precision", "MAE(km)",
                      "RMSE(km)"});
  for (const auto& profile : profiles) {
    const auto clients = env->MakeWorkload(
        profile, eval::DefaultWorkloadOptions(scale, 0.125), scale.seed + 7);
    const auto test = eval::ExperimentEnv::PooledTestSet(
        clients, scale.max_test_trajectories);

    auto add_row = [&](const std::string& variant,
                       const eval::RecoveryMetrics& metrics) {
      table.AddRow({profile.name, variant, TablePrinter::Fmt(metrics.recall),
                    TablePrinter::Fmt(metrics.precision),
                    TablePrinter::Fmt(metrics.mae_km),
                    TablePrinter::Fmt(metrics.rmse_km)});
      std::printf("done: %s %s\n", profile.name.c_str(), variant.c_str());
      std::fflush(stdout);
    };

    const eval::MethodResult full = eval::RunFederatedMethod(
        *env, baselines::ModelKind::kLightTr, clients,
        eval::DefaultRunOptions(scale));
    add_row("LightTR", full.metrics);

    add_row("w/o_FL", RunWithoutFl(*env, clients, scale, test));
    add_row("w/o_LS", RunWithoutLs(*env, clients, scale, test));

    eval::MethodRunOptions no_meta = eval::DefaultRunOptions(scale);
    no_meta.lighttr_use_teacher = false;
    const eval::MethodResult without_meta = eval::RunFederatedMethod(
        *env, baselines::ModelKind::kLightTr, clients, no_meta);
    add_row("w/o_Meta", without_meta.metrics);
  }
  std::printf("%s", table.ToString().c_str());
  (void)lighttr::bench::WriteArtifact(
      lighttr::bench::EnvBenchArgs(), "bench_fig7_ablation.csv", table.ToCsv());
  return 0;
}
