# Empty dependencies file for lighttr_baselines.
# This may be replaced when dependencies are built.
