// Runtime-dispatched CPU microkernels for the nn hot path.
//
// One process-global kernel mode — selected explicitly at startup
// (FederatedTrainerOptions::kernel, `run_experiment --kernel=`) or
// resolved lazily from CPUID on first use — routes the GEMM trio and
// the sigmoid/tanh activation sweeps through either the portable scalar
// reference or the AVX2+FMA variant (DESIGN.md §14).
//
// Determinism contract: for a FIXED mode, every kernel fixes each
// output element's floating-point reduction order by problem shape
// alone, so results are bitwise identical across thread counts and
// crash/resume. Across modes results may differ by bounded rounding
// (FMA contracts the multiply-add; kernels_test bounds the drift) —
// which is why mode selection is explicit and never silently changes
// mid-run: ActivateKernels is called at trainer construction, before
// any model math.
#ifndef LIGHTTR_NN_KERNELS_KERNELS_H_
#define LIGHTTR_NN_KERNELS_KERNELS_H_

#include <cstddef>
#include <string>

#include "nn/arena.h"

namespace lighttr::nn {

/// Which kernel table serves nn math. kAuto resolves to the best table
/// the CPU supports (kAvx2 on AVX2+FMA hardware, else kScalar).
enum class KernelMode {
  kAuto = 0,
  kScalar = 1,
  kAvx2 = 2,
};

/// True when this binary AND this CPU can run the AVX2+FMA table.
bool CpuHasAvx2Fma();

/// Pure resolution rule (testable without touching global state):
///   kAuto   -> kAvx2 when has_avx2_fma, else kScalar
///   kAvx2   -> kAvx2 when has_avx2_fma, else kScalar (documented
///              fallback: requesting an ISA the CPU lacks degrades to
///              the reference kernels instead of crashing)
///   kScalar -> kScalar
KernelMode ResolveKernelMode(KernelMode requested, bool has_avx2_fma);

/// Selects the process-global kernel table. Call once at startup
/// (FederatedTrainer's constructor does this from options.kernel)
/// before any model math; switching modes mid-run is safe memory-wise
/// but breaks bitwise reproducibility against earlier results.
void ActivateKernels(KernelMode mode);

/// The resolved mode currently in force (never kAuto: lazy resolution
/// happens on first query/use).
KernelMode ActiveKernelMode();

/// Canonical names: "auto", "scalar", "avx2".
const char* KernelModeName(KernelMode mode);

/// Parses a --kernel= value; returns false on unknown text.
bool ParseKernelMode(const std::string& text, KernelMode* mode);

namespace kernels {

// Raw dispatch entry points (Matrix/ops call these; most code should
// stay on the nn/matrix.h API). Contracts in kernel_table.h.

void GemmRowsBlocked(const Scalar* a, const Scalar* b, Scalar* c, size_t k,
                     size_t n, size_t row_begin, size_t row_end);
void GemmSmallNN(const Scalar* a, const Scalar* b, Scalar* c, size_t m,
                 size_t k, size_t n, size_t ldc);
void GemmSmallTA(const Scalar* a, const Scalar* b, Scalar* c, size_t m,
                 size_t k, size_t n);
void GemmSmallTB(const Scalar* a, const Scalar* b, Scalar* c, size_t m,
                 size_t k, size_t n);
void SigmoidInPlace(Scalar* x, size_t n);
void TanhInPlace(Scalar* x, size_t n);

}  // namespace kernels

}  // namespace lighttr::nn

#endif  // LIGHTTR_NN_KERNELS_KERNELS_H_
