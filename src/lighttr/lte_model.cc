#include "lighttr/lte_model.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "nn/losses.h"
#include "nn/ops.h"

namespace lighttr::core {

LteModel::LteModel(const traj::TrajectoryEncoder* encoder,
                   const LteConfig& config, Rng* rng, std::string name)
    : name_(std::move(name)), encoder_(encoder), config_(config) {
  LIGHTTR_CHECK(encoder != nullptr);
  LIGHTTR_CHECK(rng != nullptr);
  LIGHTTR_CHECK_GE(config_.hidden_dim, 1u);
  LIGHTTR_CHECK_GE(config_.seg_embed_dim, 1u);
  LIGHTTR_CHECK_GE(config_.num_st_blocks, 1u);
  LIGHTTR_CHECK_GE(config_.mu, 0.0);

  const size_t feature_dim = traj::TrajectoryEncoder::kFeatureDim;
  const size_t hidden = config_.hidden_dim;
  const size_t num_segments = encoder_->num_segments();

  embed_gru_ = std::make_unique<nn::GruCell>(feature_dim, hidden, "embed.gru",
                                             &params_, rng);
  // First ST-block consumes [h_t, seg-embedding, ratio]; deeper blocks
  // chain on the previous block's hidden output.
  for (size_t b = 0; b < config_.num_st_blocks; ++b) {
    const size_t in_dim =
        (b == 0) ? hidden + config_.seg_embed_dim + 1 : hidden;
    st_rnn_.push_back(std::make_unique<nn::RnnCell>(
        in_dim, hidden, "st" + std::to_string(b) + ".rnn", &params_, rng));
  }
  head_dense_ =
      std::make_unique<nn::Dense>(hidden, hidden, "head.dense", &params_, rng);
  // The segment head starts at zero so the initial prediction equals the
  // constraint-mask prior (Eq. 11); training only moves logits away from
  // the prior where the data supports it.
  seg_w_ = nn::Tensor::Variable(nn::Matrix::Zeros(hidden, num_segments));
  seg_b_ = nn::Tensor::Variable(nn::Matrix::Zeros(1, num_segments));
  params_.Register("head.seg.w", seg_w_);
  params_.Register("head.seg.b", seg_b_);
  seg_embed_ = std::make_unique<nn::Embedding>(
      num_segments, config_.seg_embed_dim, "head.emb", &params_, rng);
  emb_proj_ = std::make_unique<nn::Dense>(config_.seg_embed_dim, hidden,
                                          "head.embproj", &params_, rng);
  ratio_head_ = std::make_unique<nn::Dense>(hidden + config_.seg_embed_dim, 1,
                                            "head.ratio", &params_, rng);
}

fl::ForwardResult LteModel::RunSequence(
    const traj::IncompleteTrajectory& trajectory, bool training,
    bool teacher_forcing, Rng* rng,
    std::vector<roadnet::PointPosition>* collect) {
  const nn::Matrix inputs = encoder_->EncodeInputs(trajectory);
  const std::vector<traj::StepTarget> targets =
      encoder_->EncodeTargets(trajectory);
  const size_t steps = trajectory.size();
  const nn::Tensor x_all = nn::Tensor::Constant(inputs);

  // Embedding model (Eq. 5/6): one GRU layer over the whole sequence.
  std::vector<nn::Tensor> embedded;
  embedded.reserve(steps);
  nn::Tensor h = embed_gru_->InitialState();
  for (size_t t = 0; t < steps; ++t) {
    h = embed_gru_->Forward(nn::SliceRows(x_all, t, 1), h);
    embedded.push_back(
        nn::Dropout(h, config_.dropout, training, rng));
  }

  // ST-blocks (Eq. 7-9), decoded sequentially because e_{t-1} and
  // r_{t-1} feed step t.
  std::vector<nn::Tensor> block_state(st_rnn_.size());
  for (size_t b = 0; b < st_rnn_.size(); ++b) {
    block_state[b] = st_rnn_[b]->InitialState();
  }
  int prev_segment = targets[0].segment;
  double prev_ratio = targets[0].ratio;

  std::vector<nn::Tensor> ce_losses;
  std::vector<nn::Tensor> ratio_preds;
  std::vector<nn::Scalar> ratio_truths;
  std::vector<nn::Tensor> representation_rows;

  for (size_t t = 0; t < steps; ++t) {
    const nn::Tensor prev_emb = seg_embed_->Forward({prev_segment});
    const nn::Tensor prev_ratio_tensor = nn::Tensor::Constant(
        nn::Matrix::Full(1, 1, static_cast<nn::Scalar>(prev_ratio)));
    nn::Tensor state = nn::ConcatCols(
        nn::ConcatCols(embedded[t], prev_emb), prev_ratio_tensor);
    for (size_t b = 0; b < st_rnn_.size(); ++b) {
      state = st_rnn_[b]->Forward(state, block_state[b]);
      block_state[b] = state;
    }
    const nn::Tensor& h_prime = state;

    if (!targets[t].missing) {
      // Observed step: the MT head is skipped; ground truth drives the
      // recurrent conditioning (and Recover returns it verbatim).
      prev_segment = targets[t].segment;
      prev_ratio = targets[t].ratio;
      if (collect != nullptr) {
        (*collect)[t] = trajectory.ground_truth.points[t].position;
      }
      continue;
    }

    // Constraint mask layer (Eq. 10/11): candidate-restricted logits
    // with additive log-mask.
    const traj::StepCandidates candidates =
        encoder_->CandidatesForStep(trajectory, t);
    const nn::Tensor h_d = head_dense_->Forward(h_prime);
    const nn::Tensor logits =
        nn::CandidateLogits(h_d, seg_w_, seg_b_, candidates.segments);
    const nn::Matrix mask_row = nn::Matrix::RowVector(candidates.log_mask);
    if (candidates.target_in_range) {
      ce_losses.push_back(nn::SoftmaxCrossEntropy(
          logits, {candidates.target_index}, &mask_row));
    }

    // Predicted segment = argmax of masked logits.
    size_t best = 0;
    for (size_t k = 1; k < candidates.segments.size(); ++k) {
      if (logits.value()(0, k) + mask_row(0, k) >
          logits.value()(0, best) + mask_row(0, best)) {
        best = k;
      }
    }
    const int predicted_segment = candidates.segments[best];

    // Ratio path of Eq. 8; sigma keeps r in [0, 1] (see DESIGN.md).
    const int conditioning_segment =
        teacher_forcing ? targets[t].segment : predicted_segment;
    const nn::Tensor e_emb = seg_embed_->Forward({conditioning_segment});
    const nn::Tensor h_e =
        nn::Relu(nn::Add(h_d, emb_proj_->Forward(e_emb)));
    const nn::Tensor ratio =
        nn::Sigmoid(ratio_head_->Forward(nn::ConcatCols(h_e, e_emb)));
    ratio_preds.push_back(ratio);
    ratio_truths.push_back(static_cast<nn::Scalar>(targets[t].ratio));
    representation_rows.push_back(h_prime);

    if (collect != nullptr) {
      (*collect)[t] = roadnet::PointPosition{
          predicted_segment, std::clamp(ratio.value()(0, 0), 0.0, 1.0)};
    }
    prev_segment = conditioning_segment;
    prev_ratio = teacher_forcing ? targets[t].ratio : ratio.value()(0, 0);
  }

  fl::ForwardResult result;
  if (ratio_preds.empty()) {
    result.loss = nn::Tensor::Constant(nn::Matrix::Zeros(1, 1));
    return result;
  }
  nn::Tensor loss = nn::Tensor::Constant(nn::Matrix::Zeros(1, 1));
  if (!ce_losses.empty()) {
    nn::Tensor ce_total = ce_losses[0];
    for (size_t i = 1; i < ce_losses.size(); ++i) {
      ce_total = nn::Add(ce_total, ce_losses[i]);
    }
    loss = nn::Scale(
        ce_total, nn::Scalar{1} / static_cast<nn::Scalar>(ce_losses.size()));
  }
  if (config_.mu > 0.0) {
    nn::Matrix ratio_target(ratio_truths.size(), 1);
    for (size_t i = 0; i < ratio_truths.size(); ++i) {
      ratio_target(i, 0) = ratio_truths[i];
    }
    const nn::Tensor ratio_mat = nn::ConcatRows(ratio_preds);
    loss = nn::Add(loss, nn::Scale(nn::MseLoss(ratio_mat, ratio_target),
                                   static_cast<nn::Scalar>(config_.mu)));
  }
  result.loss = loss;
  result.representation = nn::ConcatRows(representation_rows);
  return result;
}

fl::ForwardResult LteModel::Forward(
    const traj::IncompleteTrajectory& trajectory, bool training, Rng* rng) {
  return RunSequence(trajectory, training, /*teacher_forcing=*/true, rng,
                     nullptr);
}

std::vector<roadnet::PointPosition> LteModel::Recover(
    const traj::IncompleteTrajectory& trajectory) {
  nn::NoGradScope no_grad;
  std::vector<roadnet::PointPosition> positions(trajectory.size());
  RunSequence(trajectory, /*training=*/false, /*teacher_forcing=*/false,
              nullptr, &positions);
  return positions;
}

}  // namespace lighttr::core
