#include "common/file_util.h"

#include <cstdio>
#include <fstream>
#include <sstream>

namespace lighttr {

Status WriteFile(const std::string& path, const std::string& contents) {
  // Historical entry point; now atomic so existing CSV/checkpoint dumps
  // can no longer be observed half-written.
  return WriteFileAtomic(path, contents);
}

Status WriteFileAtomic(const std::string& path, const std::string& contents) {
  // Temp file in the same directory so the final rename never crosses a
  // filesystem boundary (cross-device rename is not atomic).
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return Status::IoError("cannot open for writing: " + tmp);
    out.write(contents.data(), static_cast<std::streamsize>(contents.size()));
    out.flush();
    if (!out) {
      out.close();
      (void)std::remove(tmp.c_str());  // best-effort cleanup of the partial
      return Status::IoError("short write to " + tmp);
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    (void)std::remove(tmp.c_str());  // best-effort cleanup of the partial
    return Status::IoError("cannot rename " + tmp + " -> " + path);
  }
  return Status::Ok();
}

Status AppendToFile(const std::string& path, const std::string& contents) {
  std::ofstream out(path, std::ios::binary | std::ios::app);
  if (!out) return Status::IoError("cannot open for appending: " + path);
  out.write(contents.data(), static_cast<std::streamsize>(contents.size()));
  out.flush();
  if (!out) return Status::IoError("short append to " + path);
  return Status::Ok();
}

Result<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open for reading: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

}  // namespace lighttr
