// The Lightweight Trajectory Embedding (LTE) model — LightTR's local
// model (paper Sec. IV-B2, Fig. 3):
//
//   embedding model : one GRU layer over the encoded trajectory (Eq. 5/6)
//   ST-blocks       : a lightweight ST-operator — an RNN cell whose output
//                     feeds a pure-MLP multi-task (MT) head predicting the
//                     road segment e_t and moving ratio r_t jointly
//                     (Eq. 7-9), with the constraint mask layer (Eq. 10/11)
//                     restricting segment logits to nearby candidates.
//
// The same class serves as teacher and student in the knowledge
// distillation scheme (Sec. IV-C); Forward() exposes the ST-block hidden
// states over missing steps as the distillation representation.
#ifndef LIGHTTR_LIGHTTR_LTE_MODEL_H_
#define LIGHTTR_LIGHTTR_LTE_MODEL_H_

#include <memory>
#include <string>
#include <vector>

#include "fl/recovery_model.h"
#include "nn/layers.h"
#include "traj/encoding.h"

namespace lighttr::core {

/// Architecture hyper-parameters of the LTE model.
struct LteConfig {
  size_t hidden_dim = 32;     // D of the paper (scaled down; see DESIGN.md)
  size_t seg_embed_dim = 16;  // road-segment embedding size
  size_t num_st_blocks = 1;   // stacked lightweight ST-blocks
  double dropout = 0.2;       // embedding dropout (paper uses 0.5 at D=512)
  double mu = 1.0;            // Eq. 13 trade-off between CE and MSE
};

/// LightTR's local trajectory-recovery model.
class LteModel : public fl::RecoveryModel {
 public:
  /// `encoder` must outlive the model.
  LteModel(const traj::TrajectoryEncoder* encoder, const LteConfig& config,
           Rng* rng, std::string name = "LightTR");

  const std::string& name() const override { return name_; }
  nn::ParameterSet& params() override { return params_; }

  fl::ForwardResult Forward(const traj::IncompleteTrajectory& trajectory,
                            bool training, Rng* rng) override;

  std::vector<roadnet::PointPosition> Recover(
      const traj::IncompleteTrajectory& trajectory) override;

  const LteConfig& config() const { return config_; }

 private:
  /// Shared pass: builds the loss graph and, when `collect` is non-null,
  /// records per-step predictions (used by Recover).
  fl::ForwardResult RunSequence(const traj::IncompleteTrajectory& trajectory,
                                bool training, bool teacher_forcing, Rng* rng,
                                std::vector<roadnet::PointPosition>* collect);

  std::string name_;
  const traj::TrajectoryEncoder* encoder_;
  LteConfig config_;
  nn::ParameterSet params_;

  // Embedding model (Eq. 5/6).
  std::unique_ptr<nn::GruCell> embed_gru_;
  // Lightweight ST-operator (Eq. 7): RNN cells, one per stacked block.
  std::vector<std::unique_ptr<nn::RnnCell>> st_rnn_;
  // MT head (Eq. 8): shared across steps.
  std::unique_ptr<nn::Dense> head_dense_;   // h'_t -> h_{t,d}
  nn::Tensor seg_w_;                        // [hidden, num_segments]
  nn::Tensor seg_b_;                        // [1, num_segments]
  std::unique_ptr<nn::Embedding> seg_embed_;  // road segment embedding (Emb)
  std::unique_ptr<nn::Dense> emb_proj_;     // RNN(e^t) stand-in: e-emb -> hidden
  std::unique_ptr<nn::Dense> ratio_head_;   // [h_{t,e}, e-emb] -> r_t
};

}  // namespace lighttr::core

#endif  // LIGHTTR_LIGHTTR_LTE_MODEL_H_
