// Experiment scale presets. The paper trains D=512 models on a GPU; this
// reproduction runs on whatever CPU executes the benches, so experiment
// dimensions are scaled down while preserving the comparative shape.
// Set LIGHTTR_SCALE=full for larger runs, LIGHTTR_SCALE=smoke for the
// fastest sanity pass (default: quick).
#ifndef LIGHTTR_EVAL_SCALE_H_
#define LIGHTTR_EVAL_SCALE_H_

#include <string>

namespace lighttr::eval {

/// Scaled experiment dimensions shared by the bench binaries.
struct ExperimentScale {
  std::string name = "quick";
  int grid_rows = 9;                 // road-network intersections per side
  int grid_cols = 9;
  int num_clients = 8;               // default N (paper: 20)
  int trajectories_per_client = 20;  // pre-split local dataset size
  int rounds = 5;                    // federated communication rounds
  int local_epochs = 2;              // E of Algorithm 3
  int teacher_cycles = 1;            // Algorithm 1 passes
  int centralized_epochs = 6;
  int max_test_trajectories = 60;    // cap on pooled test evaluation
  uint64_t seed = 42;

  /// Reads LIGHTTR_SCALE from the environment ("smoke", "quick", "full").
  static ExperimentScale FromEnv();
};

}  // namespace lighttr::eval

#endif  // LIGHTTR_EVAL_SCALE_H_
