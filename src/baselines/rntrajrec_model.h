// RNTrajRec baseline [39] (paper Sec. V-A3): road-network-enhanced
// recovery with a spatial-temporal transformer flavour — GRU encoding of
// the full sequence followed by self-attention, a one-hop graph
// propagation that enriches road-segment embeddings from their network
// neighbours, and attention-based multi-task decoding. The most
// accurate and most expensive baseline (Fig. 5).
#ifndef LIGHTTR_BASELINES_RNTRAJREC_MODEL_H_
#define LIGHTTR_BASELINES_RNTRAJREC_MODEL_H_

#include <memory>
#include <string>
#include <vector>

#include "baselines/mt_head.h"
#include "fl/recovery_model.h"
#include "nn/layers.h"
#include "roadnet/road_network.h"
#include "traj/encoding.h"

namespace lighttr::baselines {

/// Configuration for RnTrajRecModel.
struct RnTrajRecConfig {
  size_t hidden_dim = 48;
  size_t seg_embed_dim = 16;
  double dropout = 0.2;
  double mu = 1.0;
  size_t max_neighbors = 6;  // one-hop graph propagation fan-in cap
};

/// Graph- and attention-enhanced seq2seq recovery model.
class RnTrajRecModel : public fl::RecoveryModel {
 public:
  RnTrajRecModel(const traj::TrajectoryEncoder* encoder,
                 const RnTrajRecConfig& config, Rng* rng,
                 std::string name = "RNTrajRec+FL");

  const std::string& name() const override { return name_; }
  nn::ParameterSet& params() override { return params_; }

  fl::ForwardResult Forward(const traj::IncompleteTrajectory& trajectory,
                            bool training, Rng* rng) override;

  std::vector<roadnet::PointPosition> Recover(
      const traj::IncompleteTrajectory& trajectory) override;

 private:
  fl::ForwardResult RunSequence(const traj::IncompleteTrajectory& trajectory,
                                bool training, bool teacher_forcing, Rng* rng,
                                std::vector<roadnet::PointPosition>* collect);

  /// One-hop graph-propagated embedding of a segment:
  /// ReLU(W1 emb[s] + W2 mean(emb[neighbors(s)])).
  nn::Tensor EnrichedSegmentEmbedding(int segment) const;

  std::string name_;
  const traj::TrajectoryEncoder* encoder_;
  RnTrajRecConfig config_;
  nn::ParameterSet params_;
  std::vector<std::vector<int>> neighbors_;  // per segment, capped fan-in

  std::unique_ptr<nn::GruCell> encoder_gru_;
  std::unique_ptr<nn::Dense> attn_ffn_;      // post-attention feed-forward
  std::unique_ptr<nn::GruCell> decoder_gru_;
  std::unique_ptr<nn::Embedding> gnn_embed_;  // segment table for the GNN
  std::unique_ptr<nn::Dense> gnn_self_;
  std::unique_ptr<nn::Dense> gnn_neighbor_;
  std::unique_ptr<MtHead> head_;
};

}  // namespace lighttr::baselines

#endif  // LIGHTTR_BASELINES_RNTRAJREC_MODEL_H_
