#include "nn/flops.h"

namespace lighttr::nn {

namespace {
int64_t g_flops = 0;
}  // namespace

void AddFlops(int64_t n) { g_flops += n; }

int64_t TotalFlops() { return g_flops; }

}  // namespace lighttr::nn
