// Resilience curves for the fault-tolerant federated loop: sweeps the
// injected dropout rate against the aggregation policy (with a fixed
// background of corrupted uploads) and reports recovery quality plus
// fault telemetry.
//
// Expected shape: with retries + screening, accuracy degrades gently as
// the dropout rate grows; the robust aggregators (median, trimmed mean)
// track the mean closely on clean rounds and beat it when corrupted
// uploads slip past a loose screen.
#include <cstdio>
#include <vector>

#include "bench/bench_output.h"
#include "common/table_printer.h"
#include "eval/harness.h"
#include "lighttr/pipeline.h"

int main() {
  using namespace lighttr;
  const eval::ExperimentScale scale = eval::ExperimentScale::FromEnv();
  std::printf("Fault-tolerance sweep (scale=%s)\n", scale.name.c_str());

  auto env = eval::ExperimentEnv::FromScale(scale);
  const traj::WorkloadProfile profile =
      eval::ScaledProfile(traj::TdriveLikeProfile(), scale);
  const auto clients = env->MakeWorkload(
      profile, eval::DefaultWorkloadOptions(scale, 0.125), scale.seed + 5);

  const std::vector<double> dropout_rates = {0.0, 0.1, 0.3, 0.5};
  const std::vector<fl::AggregatorPolicy> policies = {
      fl::AggregatorPolicy::kMean, fl::AggregatorPolicy::kMedian,
      fl::AggregatorPolicy::kTrimmedMean};

  TablePrinter table({"Dropout", "Aggregator", "Recall", "MAE(km)",
                      "Cohort%", "Drops", "Retries", "Rejected",
                      "QuorumMiss"});
  for (double dropout : dropout_rates) {
    for (fl::AggregatorPolicy policy : policies) {
      eval::MethodRunOptions options = eval::DefaultRunOptions(scale);
      options.fed.faults.dropout_rate = dropout;
      options.fed.faults.corruption_rate = 0.05;
      options.fed.tolerance.retry.max_retries = 2;
      options.fed.tolerance.quorum_fraction = 0.25;
      options.fed.tolerance.screen.max_delta_norm = 50.0;
      options.fed.tolerance.screen.norm_policy = fl::ScreenPolicy::kReject;
      options.fed.tolerance.aggregator.policy = policy;
      options.fed.tolerance.aggregator.trim_fraction = 0.2;
      const eval::MethodResult result = eval::RunFederatedMethod(
          *env, baselines::ModelKind::kLightTr, clients, options);
      const fl::FaultStats& faults = result.run.faults;
      table.AddRow(
          {TablePrinter::Fmt(dropout * 100, 0) + "%",
           fl::AggregatorPolicyName(policy),
           TablePrinter::Fmt(result.metrics.recall),
           TablePrinter::Fmt(result.metrics.mae_km),
           TablePrinter::Fmt(faults.MeanCohortFraction() * 100, 0),
           std::to_string(faults.drops), std::to_string(faults.retries),
           std::to_string(faults.rejected_uploads),
           std::to_string(faults.quorum_misses)});
      std::printf("done: dropout=%.0f%% agg=%s | %s\n", dropout * 100,
                  fl::AggregatorPolicyName(policy),
                  core::SummarizeResilience(result.run).c_str());
      std::fflush(stdout);
    }
  }
  std::printf("%s", table.ToString().c_str());
  (void)lighttr::bench::WriteArtifact(
      lighttr::bench::EnvBenchArgs(), "bench_fault_tolerance.csv", table.ToCsv());
  return 0;
}
