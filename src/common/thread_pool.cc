#include "common/thread_pool.h"

#include <cstdlib>
#include <memory>

#include "common/check.h"

namespace lighttr {

namespace {

// Set while a thread executes pool work (its own share of a ParallelFor
// included, for workers only — the caller keeps false so it can still
// fan out further sections after this one completes).
thread_local bool t_on_worker_thread = false;

// The pool this thread is currently dispatching a ParallelFor on, if
// any. Catches caller-side reentrancy: the caller runs its own share of
// a section, and a nested ParallelFor on the *same* pool from that
// share must collapse to inline (a different pool is free to fan out).
thread_local const void* t_dispatching_pool = nullptr;

}  // namespace

bool ThreadPool::OnWorkerThread() { return t_on_worker_thread; }

ThreadPool::ThreadPool(int threads) {
  if (threads < 1) threads = 1;
  workers_.reserve(static_cast<size_t>(threads - 1));
  for (int i = 0; i < threads - 1; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::RunShare(Job* job) {
  std::exception_ptr error;
  for (;;) {
    const size_t i = job->next.fetch_add(1, std::memory_order_relaxed);
    if (i >= job->n) break;
    try {
      (*job->fn)(i);
    } catch (...) {
      // Remember the first failure but keep draining indices: every
      // index must run exactly once regardless of other tasks' fate.
      if (!error) error = std::current_exception();
    }
  }
  if (error) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!job->error) job->error = error;
  }
}

void ThreadPool::WorkerLoop() {
  t_on_worker_thread = true;
  uint64_t seen_generation = 0;
  for (;;) {
    Job* job = nullptr;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [&] {
        return shutdown_ || (job_ != nullptr && generation_ != seen_generation);
      });
      if (shutdown_) return;
      seen_generation = generation_;
      job = job_;
    }
    RunShare(job);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ++job->workers_done;
    }
    done_cv_.notify_one();
  }
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  if (workers_.empty() || n == 1 || OnWorkerThread() ||
      t_dispatching_pool == this) {
    // Serial reference path: a size-1 pool, a single task, or a nested
    // call from inside a pool task all run inline, in index order.
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  Job job;
  job.fn = &fn;
  job.n = n;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    LIGHTTR_CHECK(job_ == nullptr);  // one section at a time per pool
    job_ = &job;
    ++generation_;
  }
  work_cv_.notify_all();
  const void* previous_pool = t_dispatching_pool;
  t_dispatching_pool = this;
  RunShare(&job);
  {
    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock, [&] { return job.workers_done == workers_.size(); });
    job_ = nullptr;
  }
  t_dispatching_pool = previous_pool;
  if (job.error) std::rethrow_exception(job.error);
}

int DefaultThreadCount() {
  if (const char* env = std::getenv("LIGHTTR_THREADS")) {
    char* end = nullptr;
    const long parsed = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && parsed >= 1 && parsed <= 1024) {
      return static_cast<int>(parsed);
    }
  }
  const unsigned hardware = std::thread::hardware_concurrency();
  return hardware >= 1 ? static_cast<int>(hardware) : 1;
}

int ResolveThreadCount(int requested) {
  return requested >= 1 ? requested : DefaultThreadCount();
}

namespace {
struct GlobalPoolState {
  std::mutex mutex;
  std::unique_ptr<ThreadPool> pool;  // guarded by mutex
};
GlobalPoolState& GlobalPool() {
  static GlobalPoolState state;
  return state;
}
}  // namespace

ThreadPool* GlobalThreadPool() {
  GlobalPoolState& state = GlobalPool();
  std::lock_guard<std::mutex> lock(state.mutex);
  if (!state.pool) {
    state.pool = std::make_unique<ThreadPool>(DefaultThreadCount());
  }
  return state.pool.get();
}

void SetGlobalThreadCount(int threads) {
  GlobalPoolState& state = GlobalPool();
  std::lock_guard<std::mutex> lock(state.mutex);
  state.pool = std::make_unique<ThreadPool>(ResolveThreadCount(threads));
}

}  // namespace lighttr
