#include "baselines/model_zoo.h"

#include "baselines/fc_model.h"
#include "baselines/mtrajrec_model.h"
#include "baselines/rnn_model.h"
#include "baselines/rntrajrec_model.h"
#include "common/check.h"
#include "lighttr/lte_model.h"

namespace lighttr::baselines {

std::string ModelKindName(ModelKind kind) {
  switch (kind) {
    case ModelKind::kFc:
      return "FC+FL";
    case ModelKind::kRnn:
      return "RNN+FL";
    case ModelKind::kMTrajRec:
      return "MTrajRec+FL";
    case ModelKind::kRnTrajRec:
      return "RNTrajRec+FL";
    case ModelKind::kLightTr:
      return "LightTR";
  }
  return "unknown";
}

fl::ModelFactory MakeFactory(ModelKind kind,
                             const traj::TrajectoryEncoder* encoder) {
  LIGHTTR_CHECK(encoder != nullptr);
  switch (kind) {
    case ModelKind::kFc:
      return [encoder](Rng* rng) -> std::unique_ptr<fl::RecoveryModel> {
        return std::make_unique<FcModel>(encoder, FcConfig{}, rng);
      };
    case ModelKind::kRnn:
      return [encoder](Rng* rng) -> std::unique_ptr<fl::RecoveryModel> {
        return std::make_unique<RnnModel>(encoder, RnnConfig{}, rng);
      };
    case ModelKind::kMTrajRec:
      return [encoder](Rng* rng) -> std::unique_ptr<fl::RecoveryModel> {
        return std::make_unique<MTrajRecModel>(encoder, MTrajRecConfig{}, rng);
      };
    case ModelKind::kRnTrajRec:
      return [encoder](Rng* rng) -> std::unique_ptr<fl::RecoveryModel> {
        return std::make_unique<RnTrajRecModel>(encoder, RnTrajRecConfig{},
                                                rng);
      };
    case ModelKind::kLightTr:
      return [encoder](Rng* rng) -> std::unique_ptr<fl::RecoveryModel> {
        return std::make_unique<core::LteModel>(encoder, core::LteConfig{},
                                                rng);
      };
  }
  LIGHTTR_CHECK(false && "unreachable");
  return nullptr;
}

}  // namespace lighttr::baselines
