
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/centralized_trainer.cc" "src/baselines/CMakeFiles/lighttr_baselines.dir/centralized_trainer.cc.o" "gcc" "src/baselines/CMakeFiles/lighttr_baselines.dir/centralized_trainer.cc.o.d"
  "/root/repo/src/baselines/fc_model.cc" "src/baselines/CMakeFiles/lighttr_baselines.dir/fc_model.cc.o" "gcc" "src/baselines/CMakeFiles/lighttr_baselines.dir/fc_model.cc.o.d"
  "/root/repo/src/baselines/model_zoo.cc" "src/baselines/CMakeFiles/lighttr_baselines.dir/model_zoo.cc.o" "gcc" "src/baselines/CMakeFiles/lighttr_baselines.dir/model_zoo.cc.o.d"
  "/root/repo/src/baselines/mt_head.cc" "src/baselines/CMakeFiles/lighttr_baselines.dir/mt_head.cc.o" "gcc" "src/baselines/CMakeFiles/lighttr_baselines.dir/mt_head.cc.o.d"
  "/root/repo/src/baselines/mtrajrec_model.cc" "src/baselines/CMakeFiles/lighttr_baselines.dir/mtrajrec_model.cc.o" "gcc" "src/baselines/CMakeFiles/lighttr_baselines.dir/mtrajrec_model.cc.o.d"
  "/root/repo/src/baselines/rnn_model.cc" "src/baselines/CMakeFiles/lighttr_baselines.dir/rnn_model.cc.o" "gcc" "src/baselines/CMakeFiles/lighttr_baselines.dir/rnn_model.cc.o.d"
  "/root/repo/src/baselines/rntrajrec_model.cc" "src/baselines/CMakeFiles/lighttr_baselines.dir/rntrajrec_model.cc.o" "gcc" "src/baselines/CMakeFiles/lighttr_baselines.dir/rntrajrec_model.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/lighttr/CMakeFiles/lighttr_core.dir/DependInfo.cmake"
  "/root/repo/build/src/fl/CMakeFiles/lighttr_fl.dir/DependInfo.cmake"
  "/root/repo/build/src/traj/CMakeFiles/lighttr_traj.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/lighttr_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/lighttr_common.dir/DependInfo.cmake"
  "/root/repo/build/src/roadnet/CMakeFiles/lighttr_roadnet.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/lighttr_geo.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
