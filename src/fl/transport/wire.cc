#include "fl/transport/wire.h"

#include "common/binary_io.h"
#include "common/crc32.h"

namespace lighttr::fl::transport {

namespace {

constexpr char kMagic[4] = {'L', 'T', 'R', 'F'};

// Caps on hostile length/count fields, far above any legitimate value:
// a lied-about length is rejected before any allocation scales with it.
constexpr uint64_t kMaxModelBlobBytes = 1ull << 30;
constexpr uint64_t kMaxPayloadScalars = 1ull << 27;

bool ValidType(uint8_t type) {
  return type >= static_cast<uint8_t>(FrameType::kModelPullRequest) &&
         type <= static_cast<uint8_t>(FrameType::kPushAck);
}

}  // namespace

const char* FrameTypeName(FrameType type) {
  switch (type) {
    case FrameType::kModelPullRequest: return "model-pull-request";
    case FrameType::kModelPullReply: return "model-pull-reply";
    case FrameType::kUpdatePush: return "update-push";
    case FrameType::kPushAck: return "push-ack";
  }
  return "unknown";
}

std::string EncodeFrame(FrameType type, const std::string& payload) {
  BinaryWriter writer;
  writer.WriteBytes(kMagic, sizeof(kMagic));
  writer.WriteU8(kWireVersion);
  writer.WriteU8(static_cast<uint8_t>(type));
  writer.WriteU32(static_cast<uint32_t>(payload.size()));
  writer.WriteBytes(payload.data(), payload.size());
  std::string out = writer.Take();
  AppendCrc32Trailer(&out);
  return out;
}

Status DecodeFrame(const std::string& bytes, Frame* out) {
  // Integrity first: nothing is interpreted until the CRC proves the
  // bytes survived the wire intact.
  size_t body_len = 0;
  LIGHTTR_RETURN_NOT_OK(CheckCrc32Trailer(bytes, &body_len));
  const std::string body = bytes.substr(0, body_len);
  BinaryReader reader(body);
  char magic[4];
  LIGHTTR_RETURN_NOT_OK(reader.ReadBytes(magic, sizeof(magic)));
  for (size_t i = 0; i < sizeof(kMagic); ++i) {
    if (magic[i] != kMagic[i]) {
      return Status::InvalidArgument("bad frame magic");
    }
  }
  uint8_t version = 0;
  LIGHTTR_RETURN_NOT_OK(reader.ReadU8(&version));
  if (version != kWireVersion) {
    return Status::InvalidArgument("unsupported wire version " +
                                   std::to_string(version));
  }
  uint8_t type = 0;
  LIGHTTR_RETURN_NOT_OK(reader.ReadU8(&type));
  if (!ValidType(type)) {
    return Status::InvalidArgument("unknown frame type " +
                                   std::to_string(type));
  }
  uint32_t payload_len = 0;
  LIGHTTR_RETURN_NOT_OK(reader.ReadU32(&payload_len));
  if (payload_len != reader.remaining()) {
    return Status::InvalidArgument(
        "frame length field claims " + std::to_string(payload_len) +
        " payload bytes, " + std::to_string(reader.remaining()) + " present");
  }
  out->type = static_cast<FrameType>(type);
  out->payload.assign(body.data() + reader.offset(), payload_len);
  return Status::Ok();
}

// ---------------------------------------------------------------------
// Message payload codecs.

std::string EncodeModelPullRequest(const ModelPullRequest& msg) {
  BinaryWriter writer;
  writer.WriteU32(static_cast<uint32_t>(msg.round));
  writer.WriteU32(static_cast<uint32_t>(msg.client_id));
  return writer.Take();
}

Status DecodeModelPullRequest(const std::string& payload,
                              ModelPullRequest* out) {
  BinaryReader reader(payload);
  uint32_t round = 0;
  uint32_t client = 0;
  LIGHTTR_RETURN_NOT_OK(reader.ReadU32(&round));
  LIGHTTR_RETURN_NOT_OK(reader.ReadU32(&client));
  if (!reader.AtEnd()) {
    return Status::InvalidArgument("trailing bytes in model-pull-request");
  }
  out->round = static_cast<int32_t>(round);
  out->client_id = static_cast<int32_t>(client);
  return Status::Ok();
}

std::string EncodeModelPullReply(const ModelPullReply& msg) {
  BinaryWriter writer;
  writer.WriteU32(static_cast<uint32_t>(msg.round));
  writer.WriteString(msg.model_blob);
  return writer.Take();
}

Status DecodeModelPullReply(const std::string& payload, ModelPullReply* out) {
  BinaryReader reader(payload);
  uint32_t round = 0;
  LIGHTTR_RETURN_NOT_OK(reader.ReadU32(&round));
  LIGHTTR_RETURN_NOT_OK(reader.ReadString(&out->model_blob,
                                          kMaxModelBlobBytes));
  if (!reader.AtEnd()) {
    return Status::InvalidArgument("trailing bytes in model-pull-reply");
  }
  out->round = static_cast<int32_t>(round);
  return Status::Ok();
}

std::string EncodeUpdatePush(const UpdatePush& msg) {
  BinaryWriter writer;
  writer.WriteU32(static_cast<uint32_t>(msg.round));
  writer.WriteU32(static_cast<uint32_t>(msg.client_id));
  writer.WriteU64(msg.msg_id);
  writer.WriteF64(msg.train_loss);
  writer.WriteU8(static_cast<uint8_t>(msg.kind));
  if (msg.kind == PayloadKind::kRawF64) {
    writer.WriteU64(static_cast<uint64_t>(msg.raw.size()));
    for (const double v : msg.raw) writer.WriteF64(v);
  } else {
    writer.WriteF64(msg.quantized.min_value);
    writer.WriteF64(msg.quantized.max_value);
    writer.WriteU64(static_cast<uint64_t>(msg.quantized.codes.size()));
    if (!msg.quantized.codes.empty()) {
      writer.WriteBytes(msg.quantized.codes.data(),
                        msg.quantized.codes.size());
    }
  }
  return writer.Take();
}

Status DecodeUpdatePush(const std::string& payload, UpdatePush* out) {
  BinaryReader reader(payload);
  uint32_t round = 0;
  uint32_t client = 0;
  LIGHTTR_RETURN_NOT_OK(reader.ReadU32(&round));
  LIGHTTR_RETURN_NOT_OK(reader.ReadU32(&client));
  LIGHTTR_RETURN_NOT_OK(reader.ReadU64(&out->msg_id));
  LIGHTTR_RETURN_NOT_OK(reader.ReadF64(&out->train_loss));
  uint8_t kind = 0;
  LIGHTTR_RETURN_NOT_OK(reader.ReadU8(&kind));
  if (kind > static_cast<uint8_t>(PayloadKind::kQuantizedInt8)) {
    return Status::InvalidArgument("unknown update-push payload kind " +
                                   std::to_string(kind));
  }
  out->kind = static_cast<PayloadKind>(kind);
  out->round = static_cast<int32_t>(round);
  out->client_id = static_cast<int32_t>(client);
  out->raw.clear();
  out->quantized = QuantizedBlob{};
  if (out->kind == PayloadKind::kRawF64) {
    uint64_t count = 0;
    LIGHTTR_RETURN_NOT_OK(reader.ReadU64(&count));
    if (count > kMaxPayloadScalars ||
        count * sizeof(double) > reader.remaining()) {
      return Status::InvalidArgument(
          "update-push claims " + std::to_string(count) + " scalars, " +
          std::to_string(reader.remaining()) + " payload bytes remain");
    }
    out->raw.reserve(static_cast<size_t>(count));
    for (uint64_t i = 0; i < count; ++i) {
      double v = 0.0;
      LIGHTTR_RETURN_NOT_OK(reader.ReadF64(&v));
      out->raw.push_back(v);
    }
  } else {
    LIGHTTR_RETURN_NOT_OK(reader.ReadF64(&out->quantized.min_value));
    LIGHTTR_RETURN_NOT_OK(reader.ReadF64(&out->quantized.max_value));
    uint64_t count = 0;
    LIGHTTR_RETURN_NOT_OK(reader.ReadU64(&count));
    if (count > reader.remaining()) {
      return Status::InvalidArgument(
          "update-push claims " + std::to_string(count) + " codes, " +
          std::to_string(reader.remaining()) + " payload bytes remain");
    }
    out->quantized.codes.resize(static_cast<size_t>(count));
    if (count > 0) {
      LIGHTTR_RETURN_NOT_OK(reader.ReadBytes(out->quantized.codes.data(),
                                             static_cast<size_t>(count)));
    }
  }
  if (!reader.AtEnd()) {
    return Status::InvalidArgument("trailing bytes in update-push");
  }
  return Status::Ok();
}

std::string EncodePushAck(const PushAck& msg) {
  BinaryWriter writer;
  writer.WriteU32(static_cast<uint32_t>(msg.round));
  writer.WriteU32(static_cast<uint32_t>(msg.client_id));
  writer.WriteU64(msg.msg_id);
  writer.WriteU8(msg.duplicate ? 1 : 0);
  return writer.Take();
}

Status DecodePushAck(const std::string& payload, PushAck* out) {
  BinaryReader reader(payload);
  uint32_t round = 0;
  uint32_t client = 0;
  LIGHTTR_RETURN_NOT_OK(reader.ReadU32(&round));
  LIGHTTR_RETURN_NOT_OK(reader.ReadU32(&client));
  LIGHTTR_RETURN_NOT_OK(reader.ReadU64(&out->msg_id));
  uint8_t duplicate = 0;
  LIGHTTR_RETURN_NOT_OK(reader.ReadU8(&duplicate));
  if (duplicate > 1) {
    return Status::InvalidArgument("push-ack duplicate flag out of range");
  }
  if (!reader.AtEnd()) {
    return Status::InvalidArgument("trailing bytes in push-ack");
  }
  out->round = static_cast<int32_t>(round);
  out->client_id = static_cast<int32_t>(client);
  out->duplicate = duplicate != 0;
  return Status::Ok();
}

}  // namespace lighttr::fl::transport
