// Reproducibility guarantees: every stochastic component is driven by an
// explicit seed, so identical seeds must give bit-identical workloads and
// identical end-to-end experiment results.
#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "eval/harness.h"
#include "fl/run_state.h"
#include "nn/kernels/kernels.h"
#include "nn/losses.h"
#include "roadnet/generators.h"

namespace lighttr {
namespace {

TEST(Determinism, CityGenerationIsSeedDeterministic) {
  Rng rng_a(7);
  Rng rng_b(7);
  roadnet::CityGridOptions options;
  const roadnet::RoadNetwork a = roadnet::GenerateCityGrid(options, &rng_a);
  const roadnet::RoadNetwork b = roadnet::GenerateCityGrid(options, &rng_b);
  ASSERT_EQ(a.num_vertices(), b.num_vertices());
  ASSERT_EQ(a.num_segments(), b.num_segments());
  for (roadnet::SegmentId e = 0; e < a.num_segments(); ++e) {
    EXPECT_EQ(a.segment(e).from, b.segment(e).from);
    EXPECT_EQ(a.segment(e).to, b.segment(e).to);
    EXPECT_DOUBLE_EQ(a.segment(e).length_m, b.segment(e).length_m);
  }
}

TEST(Determinism, WorkloadIsSeedDeterministic) {
  eval::ExperimentEnv env(6, 6, 11);
  traj::WorkloadProfile profile = traj::TdriveLikeProfile();
  profile.trajectories_per_client = 6;
  traj::FederatedWorkloadOptions workload;
  workload.num_clients = 2;
  const auto a = env.MakeWorkload(profile, workload, 13);
  const auto b = env.MakeWorkload(profile, workload, 13);
  ASSERT_EQ(a.size(), b.size());
  for (size_t c = 0; c < a.size(); ++c) {
    ASSERT_EQ(a[c].train.size(), b[c].train.size());
    for (size_t i = 0; i < a[c].train.size(); ++i) {
      const auto& ta = a[c].train[i];
      const auto& tb = b[c].train[i];
      ASSERT_EQ(ta.size(), tb.size());
      EXPECT_EQ(ta.observed, tb.observed);
      for (size_t p = 0; p < ta.size(); ++p) {
        EXPECT_EQ(ta.ground_truth.points[p].position,
                  tb.ground_truth.points[p].position);
      }
    }
  }
}

TEST(Determinism, DifferentSeedsGiveDifferentWorkloads) {
  eval::ExperimentEnv env(6, 6, 11);
  traj::WorkloadProfile profile = traj::TdriveLikeProfile();
  profile.trajectories_per_client = 6;
  traj::FederatedWorkloadOptions workload;
  workload.num_clients = 1;
  const auto a = env.MakeWorkload(profile, workload, 13);
  const auto b = env.MakeWorkload(profile, workload, 14);
  bool any_difference = false;
  for (size_t i = 0; i < a[0].train.size() && !any_difference; ++i) {
    for (size_t p = 0; p < a[0].train[i].size(); ++p) {
      if (!(a[0].train[i].ground_truth.points[p].position ==
            b[0].train[i].ground_truth.points[p].position)) {
        any_difference = true;
        break;
      }
    }
  }
  EXPECT_TRUE(any_difference);
}

TEST(Determinism, EndToEndExperimentIsReproducible) {
  auto run_once = [] {
    eval::ExperimentEnv env(6, 6, 17);
    traj::WorkloadProfile profile = traj::TdriveLikeProfile();
    profile.trajectories_per_client = 8;
    traj::FederatedWorkloadOptions workload;
    workload.num_clients = 3;
    workload.keep_ratio = 0.25;
    const auto clients = env.MakeWorkload(profile, workload, 19);
    eval::MethodRunOptions options;
    options.fed.rounds = 2;
    options.fed.local_epochs = 1;
    options.max_test_trajectories = 8;
    return eval::RunFederatedMethod(env, baselines::ModelKind::kLightTr,
                                    clients, options);
  };
  const eval::MethodResult a = run_once();
  const eval::MethodResult b = run_once();
  EXPECT_DOUBLE_EQ(a.metrics.recall, b.metrics.recall);
  EXPECT_DOUBLE_EQ(a.metrics.precision, b.metrics.precision);
  EXPECT_DOUBLE_EQ(a.metrics.mae_km, b.metrics.mae_km);
  EXPECT_DOUBLE_EQ(a.metrics.rmse_km, b.metrics.rmse_km);
  EXPECT_EQ(a.run.comm.TotalBytes(), b.run.comm.TotalBytes());
  ASSERT_EQ(a.run.history.size(), b.run.history.size());
  for (size_t r = 0; r < a.run.history.size(); ++r) {
    EXPECT_DOUBLE_EQ(a.run.history[r].mean_train_loss,
                     b.run.history[r].mean_train_loss);
  }
}

TEST(Determinism, FaultScheduleIsSeedDeterministic) {
  fl::FaultInjectionConfig config;
  config.dropout_rate = 0.25;
  config.straggler_rate = 0.15;
  config.corruption_rate = 0.1;
  const fl::FaultModel model(config);
  Rng a(23), b(23);
  for (int i = 0; i < 500; ++i) {
    const fl::FaultDraw da = model.Draw(&a);
    const fl::FaultDraw db = model.Draw(&b);
    ASSERT_EQ(da.type, db.type);
    ASSERT_EQ(da.corruption, db.corruption);
    ASSERT_DOUBLE_EQ(da.simulated_seconds, db.simulated_seconds);
  }
}

TEST(Determinism, FaultyExperimentIsReproducible) {
  auto run_once = [] {
    eval::ExperimentEnv env(6, 6, 17);
    traj::WorkloadProfile profile = traj::TdriveLikeProfile();
    profile.trajectories_per_client = 8;
    traj::FederatedWorkloadOptions workload;
    workload.num_clients = 3;
    workload.keep_ratio = 0.25;
    const auto clients = env.MakeWorkload(profile, workload, 19);
    eval::MethodRunOptions options;
    options.fed.rounds = 3;
    options.fed.local_epochs = 1;
    options.fed.faults.dropout_rate = 0.3;
    options.fed.faults.corruption_rate = 0.2;
    options.fed.tolerance.retry.max_retries = 1;
    options.fed.tolerance.aggregator.policy = fl::AggregatorPolicy::kMedian;
    options.max_test_trajectories = 8;
    return eval::RunFederatedMethod(env, baselines::ModelKind::kLightTr,
                                    clients, options);
  };
  const eval::MethodResult a = run_once();
  const eval::MethodResult b = run_once();
  EXPECT_DOUBLE_EQ(a.metrics.recall, b.metrics.recall);
  EXPECT_DOUBLE_EQ(a.metrics.mae_km, b.metrics.mae_km);
  EXPECT_EQ(a.run.comm.TotalBytes(), b.run.comm.TotalBytes());
  EXPECT_EQ(a.run.faults.drops, b.run.faults.drops);
  EXPECT_EQ(a.run.faults.retries, b.run.faults.retries);
  EXPECT_EQ(a.run.faults.rejected_uploads, b.run.faults.rejected_uploads);
  EXPECT_EQ(a.run.faults.quorum_misses, b.run.faults.quorum_misses);
  ASSERT_EQ(a.run.history.size(), b.run.history.size());
  for (size_t r = 0; r < a.run.history.size(); ++r) {
    EXPECT_EQ(a.run.history[r].reporting, b.run.history[r].reporting);
    EXPECT_DOUBLE_EQ(a.run.history[r].mean_train_loss,
                     b.run.history[r].mean_train_loss);
  }
}

// The determinism contract of the parallel substrate: thread count is a
// pure performance knob. The full pipeline — faults, retries, privacy
// noise, quantization, screening, aggregation — must produce bitwise
// identical results at every width because RNG streams are forked on
// the coordinating thread in canonical selection order and uploads are
// merged in that same order.
TEST(Determinism, FederatedRunIsBitwiseIdenticalAcrossThreadCounts) {
  auto run_with_threads = [](int threads) {
    eval::ExperimentEnv env(6, 6, 17);
    traj::WorkloadProfile profile = traj::TdriveLikeProfile();
    profile.trajectories_per_client = 8;
    traj::FederatedWorkloadOptions workload;
    workload.num_clients = 4;
    workload.keep_ratio = 0.25;
    const auto clients = env.MakeWorkload(profile, workload, 19);
    eval::MethodRunOptions options;
    options.fed.rounds = 3;
    options.fed.local_epochs = 1;
    options.fed.client_fraction = 0.75;
    options.fed.faults.dropout_rate = 0.3;
    options.fed.faults.corruption_rate = 0.2;
    options.fed.faults.straggler_rate = 0.1;
    options.fed.tolerance.retry.max_retries = 1;
    options.fed.privacy.clip_norm = 5.0;
    options.fed.privacy.noise_multiplier = 0.01;
    options.fed.quantize_uploads = true;
    options.fed.threads = threads;
    options.max_test_trajectories = 8;
    return eval::RunFederatedMethod(env, baselines::ModelKind::kLightTr,
                                    clients, options);
  };
  const eval::MethodResult serial = run_with_threads(1);
  for (int threads : {2, 8}) {
    const eval::MethodResult parallel = run_with_threads(threads);
    EXPECT_DOUBLE_EQ(parallel.metrics.recall, serial.metrics.recall)
        << "threads=" << threads;
    EXPECT_DOUBLE_EQ(parallel.metrics.precision, serial.metrics.precision);
    EXPECT_DOUBLE_EQ(parallel.metrics.mae_km, serial.metrics.mae_km);
    EXPECT_DOUBLE_EQ(parallel.metrics.rmse_km, serial.metrics.rmse_km);
    EXPECT_EQ(parallel.run.comm.TotalBytes(), serial.run.comm.TotalBytes());
    EXPECT_EQ(parallel.run.comm.messages, serial.run.comm.messages);
    EXPECT_EQ(parallel.run.faults.drops, serial.run.faults.drops);
    EXPECT_EQ(parallel.run.faults.retries, serial.run.faults.retries);
    EXPECT_EQ(parallel.run.faults.stragglers, serial.run.faults.stragglers);
    EXPECT_EQ(parallel.run.faults.rejected_uploads,
              serial.run.faults.rejected_uploads);
    EXPECT_DOUBLE_EQ(parallel.run.faults.simulated_backoff_s,
                     serial.run.faults.simulated_backoff_s);
    ASSERT_EQ(parallel.run.history.size(), serial.run.history.size());
    for (size_t r = 0; r < serial.run.history.size(); ++r) {
      EXPECT_EQ(parallel.run.history[r].reporting,
                serial.run.history[r].reporting);
      EXPECT_DOUBLE_EQ(parallel.run.history[r].mean_train_loss,
                       serial.run.history[r].mean_train_loss)
          << "threads=" << threads << " round=" << r;
      EXPECT_DOUBLE_EQ(parallel.run.history[r].global_valid_accuracy,
                       serial.run.history[r].global_valid_accuracy);
    }
  }
}

// ---------------------------------------------------------------------
// Self-healing across thread widths: the health verdicts, rollback
// points, and quarantine decisions are all computed on the coordinating
// thread from canonically ordered observations, so a run that diverges,
// rolls back, and quarantines an offender must be bitwise identical at
// every width.

class HealingStubModel : public fl::RecoveryModel {
 public:
  explicit HealingStubModel(Rng* rng) {
    w_ = nn::Tensor::Variable(
        nn::Matrix::Full(1, 1, rng != nullptr ? rng->Uniform(-1, 1) : 0.0));
    params_.Register("w", w_);
  }

  const std::string& name() const override { return name_; }
  nn::ParameterSet& params() override { return params_; }

  fl::ForwardResult Forward(const traj::IncompleteTrajectory& trajectory,
                            bool /*training*/, Rng* /*rng*/) override {
    nn::Matrix target(1, 1);
    target(0, 0) = static_cast<nn::Scalar>(trajectory.ground_truth.driver_id);
    fl::ForwardResult result;
    result.loss = nn::MseLoss(w_, target);
    result.representation = w_;
    return result;
  }

  std::vector<roadnet::PointPosition> Recover(
      const traj::IncompleteTrajectory& trajectory) override {
    return std::vector<roadnet::PointPosition>(trajectory.size(),
                                               roadnet::PointPosition{0, 0.0});
  }

  double weight() const { return w_.value()(0, 0); }

 private:
  std::string name_ = "Stub";
  nn::ParameterSet params_;
  nn::Tensor w_;
};

// Poisons client 0's uploads after 3 clean rounds (cf. health_test's
// TurncoatUpdate). Only client 0's task ever touches the counter and a
// client runs at most once per round, so the count — and therefore the
// poison schedule — is identical at every thread width.
class HostileClientUpdate : public fl::LocalUpdateStrategy {
 public:
  double Update(int client_index, fl::RecoveryModel* model,
                nn::Optimizer* optimizer, const traj::ClientDataset& data,
                int epochs, Rng* rng) override {
    const double loss =
        plain_.Update(client_index, model, optimizer, data, epochs, rng);
    if (client_index == 0 && ++hostile_updates_ > 3) {
      model->params().AssignFlat(
          std::vector<nn::Scalar>(model->params().Flatten().size(),
                                  nn::Scalar{1e8}));
    }
    return loss;
  }

 private:
  fl::PlainLocalUpdate plain_;
  int hostile_updates_ = 0;
};

TEST(Determinism, SelfHealingRunIsBitwiseIdenticalAcrossThreadCounts) {
  auto make_clients = [] {
    Rng rng(61);
    roadnet::CityGridOptions options;
    options.rows = 6;
    options.cols = 6;
    const roadnet::RoadNetwork net =
        roadnet::GenerateCityGrid(options, &rng);
    traj::WorkloadProfile profile = traj::TdriveLikeProfile();
    profile.trajectories_per_client = 6;
    traj::FederatedWorkloadOptions workload;
    workload.num_clients = 4;
    return traj::GenerateFederatedWorkload(net, profile, workload, &rng);
  };
  auto run_with_threads = [&](int threads) {
    auto clients = make_clients();
    fl::FederatedTrainerOptions options;
    options.rounds = 12;
    options.local_epochs = 2;
    options.learning_rate = 0.05;
    options.threads = threads;
    options.tolerance.screen.enabled = false;  // let the poison through
    options.healing.enabled = true;
    options.healing.reputation.quarantine_threshold = 0.4;
    fl::FederatedTrainer trainer(
        [](Rng* rng) -> std::unique_ptr<fl::RecoveryModel> {
          return std::make_unique<HealingStubModel>(rng);
        },
        &clients, options);
    HostileClientUpdate strategy;
    fl::FederatedRunResult result = trainer.Run(&strategy);
    return std::make_pair(
        result,
        dynamic_cast<HealingStubModel*>(trainer.global_model())->weight());
  };

  const auto [serial, serial_w] = run_with_threads(1);
  // The scenario actually exercises the healing path.
  ASSERT_GE(serial.faults.diverged_rounds, 1);
  ASSERT_GE(serial.faults.rollbacks, 1);
  ASSERT_GE(serial.faults.quarantine_events, 1);

  for (int threads : {2, 8}) {
    const auto [parallel, parallel_w] = run_with_threads(threads);
    EXPECT_EQ(parallel_w, serial_w) << "threads=" << threads;
    EXPECT_EQ(parallel.faults.diverged_rounds, serial.faults.diverged_rounds);
    EXPECT_EQ(parallel.faults.rollbacks, serial.faults.rollbacks);
    EXPECT_EQ(parallel.faults.outlier_uploads, serial.faults.outlier_uploads);
    EXPECT_EQ(parallel.faults.quarantine_events,
              serial.faults.quarantine_events);
    EXPECT_EQ(parallel.faults.parole_events, serial.faults.parole_events);
    EXPECT_EQ(parallel.faults.quarantined_skips,
              serial.faults.quarantined_skips);
    EXPECT_EQ(parallel.gave_up, serial.gave_up);
    ASSERT_EQ(parallel.history.size(), serial.history.size());
    for (size_t r = 0; r < serial.history.size(); ++r) {
      EXPECT_EQ(parallel.history[r].verdict, serial.history[r].verdict)
          << "threads=" << threads << " round=" << r;
      EXPECT_EQ(parallel.history[r].outlier_uploads,
                serial.history[r].outlier_uploads);
      EXPECT_EQ(parallel.history[r].quarantined,
                serial.history[r].quarantined);
      EXPECT_EQ(parallel.history[r].skipped_quarantined,
                serial.history[r].skipped_quarantined);
      EXPECT_EQ(parallel.history[r].escalated, serial.history[r].escalated);
      EXPECT_DOUBLE_EQ(parallel.history[r].valid_loss,
                       serial.history[r].valid_loss)
          << "threads=" << threads << " round=" << r;
      EXPECT_DOUBLE_EQ(parallel.history[r].mean_train_loss,
                       serial.history[r].mean_train_loss);
    }
  }
}

// ---------------------------------------------------------------------
// Hostile network across thread widths and crashes: every channel fault
// is drawn from a per-link Rng forked on the coordinating thread and
// consumed sequentially by that link alone, so the network's "weather" —
// and everything downstream of it (retries, dedups, which client times
// out) — is a pure function of the channel seed, never of scheduling.

fl::FederatedTrainerOptions LossyChannelOptions(int rounds) {
  fl::FederatedTrainerOptions options;
  options.rounds = rounds;
  options.local_epochs = 2;
  options.learning_rate = 0.05;
  options.transport.channel.drop_rate = 0.15;
  options.transport.channel.duplicate_rate = 0.1;
  options.transport.channel.reorder_rate = 0.1;
  options.transport.channel.corrupt_rate = 0.15;
  options.transport.channel.delay_rate = 0.05;
  options.transport.retry.max_retries = 32;
  return options;
}

std::vector<traj::ClientDataset> MakeLossyClients(uint64_t seed) {
  Rng rng(seed);
  roadnet::CityGridOptions grid;
  grid.rows = 6;
  grid.cols = 6;
  const roadnet::RoadNetwork net = roadnet::GenerateCityGrid(grid, &rng);
  traj::WorkloadProfile profile = traj::TdriveLikeProfile();
  profile.trajectories_per_client = 6;
  traj::FederatedWorkloadOptions workload;
  workload.num_clients = 4;
  return traj::GenerateFederatedWorkload(net, profile, workload, &rng);
}

std::unique_ptr<fl::RecoveryModel> MakeHealingStub(Rng* rng) {
  return std::make_unique<HealingStubModel>(rng);
}

TEST(Determinism, LossyChannelRunIsBitwiseIdenticalAcrossThreadCounts) {
  auto run_with_threads = [](int threads) {
    auto clients = MakeLossyClients(67);
    fl::FederatedTrainerOptions options = LossyChannelOptions(10);
    options.threads = threads;
    fl::FederatedTrainer trainer(MakeHealingStub, &clients, options);
    fl::FederatedRunResult result = trainer.Run();
    return std::make_pair(std::move(result),
                          trainer.global_model()->params().Serialize());
  };

  const auto [serial, serial_params] = run_with_threads(1);
  // The weather actually happened: frames were damaged and retried.
  ASSERT_GT(serial.faults.net_crc_drops, 0);
  ASSERT_GT(serial.faults.net_retries, 0);

  for (int threads : {2, 8}) {
    const auto [parallel, parallel_params] = run_with_threads(threads);
    EXPECT_EQ(parallel_params, serial_params) << "threads=" << threads;
    EXPECT_EQ(parallel.comm.messages, serial.comm.messages);
    EXPECT_EQ(parallel.comm.bytes_uplink, serial.comm.bytes_uplink);
    EXPECT_EQ(parallel.comm.bytes_downlink, serial.comm.bytes_downlink);
    EXPECT_EQ(parallel.faults.net_retries, serial.faults.net_retries);
    EXPECT_EQ(parallel.faults.net_timeouts, serial.faults.net_timeouts);
    EXPECT_EQ(parallel.faults.net_crc_drops, serial.faults.net_crc_drops);
    EXPECT_EQ(parallel.faults.net_dedup_drops, serial.faults.net_dedup_drops);
    EXPECT_EQ(parallel.faults.net_late_drops, serial.faults.net_late_drops);
    EXPECT_EQ(parallel.faults.net_lost, serial.faults.net_lost);
    ASSERT_EQ(parallel.history.size(), serial.history.size());
    for (size_t r = 0; r < serial.history.size(); ++r) {
      EXPECT_EQ(parallel.history[r].net_retries, serial.history[r].net_retries)
          << "threads=" << threads << " round=" << r;
      EXPECT_EQ(parallel.history[r].net_crc_drops,
                serial.history[r].net_crc_drops);
      EXPECT_EQ(parallel.history[r].reporting, serial.history[r].reporting);
      EXPECT_DOUBLE_EQ(parallel.history[r].valid_loss,
                       serial.history[r].valid_loss)
          << "threads=" << threads << " round=" << r;
    }
  }
}

TEST(Determinism, CrashResumeOverLossyChannelIsBitwiseIdentical) {
  // A run killed mid-round over a hostile network must resume to the
  // exact bits of an uninterrupted run: the snapshot carries the channel
  // RNG state, so the replay sees the same network weather.
  auto clients = MakeLossyClients(71);
  fl::FederatedTrainerOptions baseline_options = LossyChannelOptions(12);
  fl::FederatedTrainer baseline(MakeHealingStub, &clients, baseline_options);
  const fl::FederatedRunResult expected = baseline.Run();
  ASSERT_GT(expected.faults.net_crc_drops, 0);
  const std::string expected_params =
      baseline.global_model()->params().Serialize();

  const std::string dir =
      (std::filesystem::path(::testing::TempDir()) / "lossy_crash_resume")
          .generic_string();
  std::filesystem::remove_all(dir);
  fl::FederatedTrainerOptions options = LossyChannelOptions(12);
  options.durability.dir = dir;
  options.durability.snapshot_every = 3;
  options.durability.crash_point = fl::CrashPoint::kMidRound;
  options.durability.crash_round = 8;

  bool crashed = false;
  {
    fl::FederatedTrainer victim(MakeHealingStub, &clients, options);
    try {
      victim.Run();
    } catch (const fl::InjectedCrash& crash) {
      crashed = true;
      EXPECT_EQ(crash.round, 8);
    }
  }
  ASSERT_TRUE(crashed);

  options.durability.crash_point = fl::CrashPoint::kNone;
  options.durability.crash_round = 0;
  options.durability.resume = true;
  fl::FederatedTrainer resumed(MakeHealingStub, &clients, options);
  const fl::FederatedRunResult result = resumed.Run();
  EXPECT_GT(resumed.resumed_round(), 0);
  EXPECT_EQ(resumed.global_model()->params().Serialize(), expected_params);
  EXPECT_EQ(result.comm.messages, expected.comm.messages);
  EXPECT_EQ(result.comm.bytes_uplink, expected.comm.bytes_uplink);
  EXPECT_EQ(result.comm.bytes_downlink, expected.comm.bytes_downlink);
  EXPECT_EQ(result.faults.net_retries, expected.faults.net_retries);
  EXPECT_EQ(result.faults.net_timeouts, expected.faults.net_timeouts);
  EXPECT_EQ(result.faults.net_crc_drops, expected.faults.net_crc_drops);
  EXPECT_EQ(result.faults.net_dedup_drops, expected.faults.net_dedup_drops);
  EXPECT_EQ(result.faults.net_late_drops, expected.faults.net_late_drops);
  EXPECT_EQ(result.faults.net_lost, expected.faults.net_lost);
  ASSERT_EQ(result.history.size(), expected.history.size());
  for (size_t r = 0; r < expected.history.size(); ++r) {
    EXPECT_EQ(result.history[r].net_retries, expected.history[r].net_retries)
        << "round=" << r;
    EXPECT_EQ(result.history[r].net_crc_drops,
              expected.history[r].net_crc_drops);
    EXPECT_EQ(result.history[r].net_dedup_drops,
              expected.history[r].net_dedup_drops);
    EXPECT_EQ(result.history[r].reporting, expected.history[r].reporting);
  }
}

// The kernel axis of the determinism contract (DESIGN.md §14): for a
// FIXED kernel mode, thread count and crash/resume stay bitwise
// invisible — on AVX2 hardware kAuto runs the vector table, so this
// sweeps a genuinely different reduction order than kScalar. Across
// modes results may differ (FMA rounding), which is exactly why the
// mode is pinned in FederatedTrainerOptions rather than sniffed
// per-thread.
TEST(Determinism, LossyChannelRunIsBitwiseIdenticalPerKernelMode) {
  const nn::KernelMode saved = nn::ActiveKernelMode();
  for (nn::KernelMode mode : {nn::KernelMode::kScalar, nn::KernelMode::kAuto}) {
    auto run_with_threads = [mode](int threads) {
      auto clients = MakeLossyClients(67);
      fl::FederatedTrainerOptions options = LossyChannelOptions(6);
      options.threads = threads;
      options.kernel = mode;
      fl::FederatedTrainer trainer(MakeHealingStub, &clients, options);
      fl::FederatedRunResult result = trainer.Run();
      return std::make_pair(std::move(result),
                            trainer.global_model()->params().Serialize());
    };
    const auto [serial, serial_params] = run_with_threads(1);
    ASSERT_GT(serial.faults.net_retries, 0);
    for (int threads : {2, 8}) {
      const auto [parallel, parallel_params] = run_with_threads(threads);
      EXPECT_EQ(parallel_params, serial_params)
          << "kernel=" << nn::KernelModeName(mode) << " threads=" << threads;
      EXPECT_EQ(parallel.comm.messages, serial.comm.messages);
      EXPECT_EQ(parallel.faults.net_retries, serial.faults.net_retries);
      EXPECT_EQ(parallel.faults.net_crc_drops, serial.faults.net_crc_drops);
    }

    // Crash mid-run and resume under the same kernel: same final bits.
    const std::string dir = (std::filesystem::path(::testing::TempDir()) /
                             (std::string("kernel_crash_resume_") +
                              nn::KernelModeName(mode)))
                                .generic_string();
    std::filesystem::remove_all(dir);
    auto clients = MakeLossyClients(67);
    fl::FederatedTrainerOptions options = LossyChannelOptions(6);
    options.kernel = mode;
    options.durability.dir = dir;
    options.durability.snapshot_every = 2;
    options.durability.crash_point = fl::CrashPoint::kMidRound;
    options.durability.crash_round = 4;
    bool crashed = false;
    {
      fl::FederatedTrainer victim(MakeHealingStub, &clients, options);
      try {
        victim.Run();
      } catch (const fl::InjectedCrash&) {
        crashed = true;
      }
    }
    ASSERT_TRUE(crashed) << nn::KernelModeName(mode);
    options.durability.crash_point = fl::CrashPoint::kNone;
    options.durability.crash_round = 0;
    options.durability.resume = true;
    fl::FederatedTrainer resumed(MakeHealingStub, &clients, options);
    (void)resumed.Run();
    EXPECT_GT(resumed.resumed_round(), 0);
    EXPECT_EQ(resumed.global_model()->params().Serialize(), serial_params)
        << "kernel=" << nn::KernelModeName(mode);
  }
  nn::ActivateKernels(saved);
}

}  // namespace
}  // namespace lighttr
