// Workload profiles and federated dataset construction.
//
// Substitutes the paper's Tdrive (sparse, noisy, many drivers) and
// Geolife (data-sufficient, cleaner) datasets with synthetic profiles
// that reproduce those regimes (see DESIGN.md, Substitutions).
#ifndef LIGHTTR_TRAJ_WORKLOAD_H_
#define LIGHTTR_TRAJ_WORKLOAD_H_

#include <string>
#include <vector>

#include "common/rng.h"
#include "roadnet/road_network.h"
#include "traj/generator.h"
#include "traj/trajectory.h"

namespace lighttr::traj {

/// Describes a dataset regime (one row of paper Table III).
struct WorkloadProfile {
  std::string name;
  GeneratorOptions generator;
  double gps_noise_m = 20.0;        // raw-view GPS error
  int trajectories_per_client = 24; // local dataset size (pre-split)
};

/// Sparse regime: fewer, shorter, noisier trajectories per client.
WorkloadProfile TdriveLikeProfile();

/// Data-sufficient regime: more, longer, cleaner trajectories per client.
WorkloadProfile GeolifeLikeProfile();

/// One platform center's local data (Definition 7), split 7:2:1.
struct ClientDataset {
  std::vector<IncompleteTrajectory> train;
  std::vector<IncompleteTrajectory> valid;
  std::vector<IncompleteTrajectory> test;
  roadnet::VertexId home = roadnet::kInvalidVertex;

  size_t TotalSize() const {
    return train.size() + valid.size() + test.size();
  }
};

/// Options for GenerateFederatedWorkload.
struct FederatedWorkloadOptions {
  int num_clients = 20;
  double keep_ratio = 0.125;  // Sec. V-A5: 6.25% / 12.5% / 25%
  double train_frac = 0.7;    // 7:2:1 split of Sec. V-A5
  double valid_frac = 0.2;
};

/// Generates the decentralized datasets {T_1..T_N}: each client gets a
/// home region (spatial Non-IID-ness) and `trajectories_per_client`
/// trajectories, downsampled at `keep_ratio` and split 7:2:1.
std::vector<ClientDataset> GenerateFederatedWorkload(
    const roadnet::RoadNetwork& network, const WorkloadProfile& profile,
    const FederatedWorkloadOptions& options, Rng* rng);

/// Flattens client train splits into one centralized training set
/// (for the centralized-baseline comparison of paper Table VI).
std::vector<IncompleteTrajectory> MergeTrainSets(
    const std::vector<ClientDataset>& clients);

}  // namespace lighttr::traj

#endif  // LIGHTTR_TRAJ_WORKLOAD_H_
