file(REMOVE_RECURSE
  "liblighttr_core.a"
)
