// Tests for the fault-injection and fault-tolerance layer: deterministic
// fault schedules, upload corruption, server-side screening, robust
// aggregation, retry/backoff, quorum degradation, and end-to-end
// resilience of the federated loop under injected faults.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <memory>

#include "common/backoff.h"
#include "common/finite.h"
#include "eval/harness.h"
#include "fl/aggregation.h"
#include "fl/fault_injection.h"
#include "fl/federated_trainer.h"
#include "nn/losses.h"
#include "roadnet/generators.h"
#include "traj/generator.h"
#include "traj/workload.h"

namespace lighttr::fl {
namespace {

// Same minimal RecoveryModel as fl_test: one scalar parameter trained
// toward the per-trajectory driver_id.
class StubModel : public RecoveryModel {
 public:
  explicit StubModel(Rng* rng) {
    w_ = nn::Tensor::Variable(
        nn::Matrix::Full(1, 1, rng != nullptr ? rng->Uniform(-1, 1) : 0.0));
    params_.Register("w", w_);
  }

  const std::string& name() const override { return name_; }
  nn::ParameterSet& params() override { return params_; }

  ForwardResult Forward(const traj::IncompleteTrajectory& trajectory,
                        bool /*training*/, Rng* /*rng*/) override {
    nn::Matrix target(1, 1);
    target(0, 0) = static_cast<nn::Scalar>(trajectory.ground_truth.driver_id);
    ForwardResult result;
    result.loss = nn::MseLoss(w_, target);
    result.representation = w_;
    return result;
  }

  std::vector<roadnet::PointPosition> Recover(
      const traj::IncompleteTrajectory& trajectory) override {
    return std::vector<roadnet::PointPosition>(trajectory.size(),
                                               roadnet::PointPosition{0, 0.0});
  }

  double weight() const { return w_.value()(0, 0); }

 private:
  std::string name_ = "Stub";
  nn::ParameterSet params_;
  nn::Tensor w_;
};

std::vector<traj::ClientDataset> MakeClients(int n, uint64_t seed,
                                             int per_client = 6) {
  Rng rng(seed);
  roadnet::CityGridOptions options;
  options.rows = 6;
  options.cols = 6;
  static roadnet::RoadNetwork net = roadnet::GenerateCityGrid(options, &rng);
  traj::WorkloadProfile profile = traj::TdriveLikeProfile();
  profile.trajectories_per_client = per_client;
  traj::FederatedWorkloadOptions workload;
  workload.num_clients = n;
  return traj::GenerateFederatedWorkload(net, profile, workload, &rng);
}

FaultInjectionConfig LossyConfig() {
  FaultInjectionConfig config;
  config.dropout_rate = 0.3;
  config.straggler_rate = 0.1;
  config.corruption_rate = 0.1;
  return config;
}

// ---------------------------------------------------------------------
// FaultModel

TEST(FaultModel, IdenticalSeedsGiveIdenticalSchedules) {
  const FaultModel model(LossyConfig());
  Rng a(21), b(21);
  for (int i = 0; i < 200; ++i) {
    const FaultDraw da = model.Draw(&a);
    const FaultDraw db = model.Draw(&b);
    EXPECT_EQ(da.type, db.type);
    EXPECT_EQ(da.corruption, db.corruption);
    EXPECT_DOUBLE_EQ(da.simulated_seconds, db.simulated_seconds);
  }
}

TEST(FaultModel, DisabledConfigNeverFaults) {
  const FaultModel model(FaultInjectionConfig{});
  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(model.Draw(&rng).type, FaultType::kNone);
  }
}

TEST(FaultModel, RatesShowUpInTheScheduleAtRoughlyTheRightFrequency) {
  FaultInjectionConfig config;
  config.dropout_rate = 0.5;
  const FaultModel model(config);
  Rng rng(5);
  int drops = 0;
  const int n = 2000;
  for (int i = 0; i < n; ++i) {
    if (model.Draw(&rng).type == FaultType::kDropout) ++drops;
  }
  EXPECT_NEAR(static_cast<double>(drops) / n, 0.5, 0.05);
}

TEST(FaultModel, StragglerExceedsDeadline) {
  FaultInjectionConfig config;
  config.straggler_rate = 1.0;
  config.straggler_slowdown_mean = 100.0;  // always blows the deadline
  config.straggler_slowdown_sigma = 0.1;
  const FaultModel model(config);
  Rng rng(7);
  const FaultDraw draw = model.Draw(&rng);
  EXPECT_EQ(draw.type, FaultType::kStraggler);
  EXPECT_GT(draw.simulated_seconds, config.round_deadline_s);
}

TEST(FaultModel, CorruptionKindsDamageUploads) {
  Rng rng(9);
  std::vector<nn::Scalar> nan_upload(50, 1.0);
  FaultModel::Corrupt(CorruptionKind::kNaN, &rng, &nan_upload);
  bool has_nan = false;
  for (nn::Scalar x : nan_upload) has_nan |= IsNan(x);
  EXPECT_TRUE(has_nan);

  std::vector<nn::Scalar> inf_upload(50, 1.0);
  FaultModel::Corrupt(CorruptionKind::kInf, &rng, &inf_upload);
  bool has_inf = false;
  for (nn::Scalar x : inf_upload) has_inf |= IsInf(x);
  EXPECT_TRUE(has_inf);

  std::vector<nn::Scalar> scaled(50, 1.0);
  FaultModel::Corrupt(CorruptionKind::kScale, &rng, &scaled);
  EXPECT_GE(std::abs(scaled[0]), 1e4);

  std::vector<nn::Scalar> garbage(50, 1.0);
  FaultModel::Corrupt(CorruptionKind::kGarbage, &rng, &garbage);
  bool changed = false;
  for (nn::Scalar x : garbage) changed |= x != nn::Scalar{1};
  EXPECT_TRUE(changed);
}

// ---------------------------------------------------------------------
// Backoff

TEST(Backoff, GrowsGeometricallyAndCaps) {
  BackoffConfig config;
  config.base_delay_s = 1.0;
  config.multiplier = 2.0;
  config.max_delay_s = 5.0;
  config.jitter = 0.0;
  EXPECT_DOUBLE_EQ(BackoffDelaySeconds(config, 0, nullptr), 1.0);
  EXPECT_DOUBLE_EQ(BackoffDelaySeconds(config, 1, nullptr), 2.0);
  EXPECT_DOUBLE_EQ(BackoffDelaySeconds(config, 2, nullptr), 4.0);
  EXPECT_DOUBLE_EQ(BackoffDelaySeconds(config, 3, nullptr), 5.0);  // capped
}

TEST(Backoff, JitterStaysWithinBounds) {
  BackoffConfig config;
  config.base_delay_s = 1.0;
  config.jitter = 0.25;
  Rng rng(11);
  for (int i = 0; i < 100; ++i) {
    const double d = BackoffDelaySeconds(config, 0, &rng);
    EXPECT_GE(d, 0.75);
    EXPECT_LE(d, 1.25);
  }
}

// ---------------------------------------------------------------------
// Upload screening

TEST(ScreenUpload, RejectsNonFinite) {
  const std::vector<nn::Scalar> reference(4, 0.0);
  UploadScreenConfig config;
  std::vector<nn::Scalar> nan_upload = {0.0, std::nan(""), 0.0, 0.0};
  EXPECT_FALSE(ScreenUpload(&nan_upload, reference, config).ok());
  std::vector<nn::Scalar> inf_upload = {
      0.0, std::numeric_limits<nn::Scalar>::infinity(), 0.0, 0.0};
  EXPECT_FALSE(ScreenUpload(&inf_upload, reference, config).ok());
  std::vector<nn::Scalar> healthy = {0.1, -0.1, 0.2, 0.0};
  EXPECT_TRUE(ScreenUpload(&healthy, reference, config).ok());
}

TEST(ScreenUpload, RejectsSizeMismatch) {
  const std::vector<nn::Scalar> reference(4, 0.0);
  std::vector<nn::Scalar> short_upload = {1.0};
  EXPECT_FALSE(ScreenUpload(&short_upload, reference, {}).ok());
}

TEST(ScreenUpload, ClipPolicyRescalesDeltaOntoBound) {
  const std::vector<nn::Scalar> reference = {0.0, 0.0};
  UploadScreenConfig config;
  config.max_delta_norm = 1.0;
  config.norm_policy = ScreenPolicy::kClip;
  std::vector<nn::Scalar> upload = {3.0, 4.0};  // delta norm 5
  bool clipped = false;
  ASSERT_TRUE(ScreenUpload(&upload, reference, config, &clipped).ok());
  EXPECT_TRUE(clipped);
  EXPECT_NEAR(upload[0], 0.6, 1e-9);
  EXPECT_NEAR(upload[1], 0.8, 1e-9);
}

TEST(ScreenUpload, RejectPolicyDiscardsNormExplosions) {
  const std::vector<nn::Scalar> reference = {0.0, 0.0};
  UploadScreenConfig config;
  config.max_delta_norm = 1.0;
  config.norm_policy = ScreenPolicy::kReject;
  std::vector<nn::Scalar> upload = {3.0, 4.0};
  EXPECT_FALSE(ScreenUpload(&upload, reference, config).ok());
  std::vector<nn::Scalar> in_bound = {0.3, 0.4};
  EXPECT_TRUE(ScreenUpload(&in_bound, reference, config).ok());
}

TEST(ScreenUpload, DisabledPassesAnything) {
  const std::vector<nn::Scalar> reference(1, 0.0);
  UploadScreenConfig config;
  config.enabled = false;
  std::vector<nn::Scalar> nan_upload = {std::nan("")};
  EXPECT_TRUE(ScreenUpload(&nan_upload, reference, config).ok());
}

// ---------------------------------------------------------------------
// Robust aggregation

TEST(AggregateFlat, EmptySetReturnsStatusNotCrash) {
  const Result<std::vector<nn::Scalar>> result = AggregateFlat({}, {});
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
}

TEST(AggregateFlat, LengthMismatchReturnsStatus) {
  const Result<std::vector<nn::Scalar>> result =
      AggregateFlat({{1.0, 2.0}, {1.0}}, {});
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(AggregateFlat, MeanMatchesFedAvg) {
  AggregatorConfig config;
  config.policy = AggregatorPolicy::kMean;
  const auto result = AggregateFlat({{1.0, 10.0}, {3.0, 20.0}}, config);
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result.value()[0], 2.0);
  EXPECT_DOUBLE_EQ(result.value()[1], 15.0);
}

TEST(AggregateFlat, CoordinateMedianOddAndEven) {
  AggregatorConfig config;
  config.policy = AggregatorPolicy::kMedian;
  const auto odd = AggregateFlat({{1.0}, {100.0}, {3.0}}, config);
  ASSERT_TRUE(odd.ok());
  EXPECT_DOUBLE_EQ(odd.value()[0], 3.0);
  const auto even = AggregateFlat({{1.0}, {2.0}, {8.0}, {100.0}}, config);
  ASSERT_TRUE(even.ok());
  EXPECT_DOUBLE_EQ(even.value()[0], 5.0);
}

TEST(AggregateFlat, TrimmedMeanDropsOutliers) {
  AggregatorConfig config;
  config.policy = AggregatorPolicy::kTrimmedMean;
  config.trim_fraction = 0.2;  // 5 uploads -> trim 1 from each tail
  const auto result = AggregateFlat(
      {{1.0}, {2.0}, {3.0}, {4.0}, {1e9}}, config);
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result.value()[0], 3.0);  // mean of {2, 3, 4}
}

TEST(AggregateFlat, TrimmedMeanAlwaysKeepsAtLeastOneValue) {
  AggregatorConfig config;
  config.policy = AggregatorPolicy::kTrimmedMean;
  config.trim_fraction = 0.49;
  const auto result = AggregateFlat({{1.0}, {5.0}}, config);
  ASSERT_TRUE(result.ok());  // k clamps to 0: plain mean of both
  EXPECT_DOUBLE_EQ(result.value()[0], 3.0);
}

TEST(AggregateFlat, InvalidTrimFractionIsRejected) {
  AggregatorConfig config;
  config.policy = AggregatorPolicy::kTrimmedMean;
  config.trim_fraction = 0.5;
  EXPECT_FALSE(AggregateFlat({{1.0}}, config).ok());
}

// ---------------------------------------------------------------------
// Fault-tolerant federated rounds (end to end on the stub model)

FederatedTrainerOptions BaseOptions(int rounds = 30) {
  FederatedTrainerOptions options;
  options.rounds = rounds;
  options.local_epochs = 2;
  options.learning_rate = 0.05;
  return options;
}

std::unique_ptr<RecoveryModel> MakeStub(Rng* rng) {
  return std::make_unique<StubModel>(rng);
}

TEST(FaultTolerantTrainer, ThirtyPercentDropoutConvergesNearBaseline) {
  auto clients = MakeClients(4, 31);

  FederatedTrainer clean(MakeStub, &clients, BaseOptions());
  clean.Run();
  const double clean_w = dynamic_cast<StubModel*>(clean.global_model())->weight();

  FederatedTrainerOptions faulty_options = BaseOptions();
  faulty_options.faults.dropout_rate = 0.3;
  faulty_options.tolerance.retry.max_retries = 2;
  FederatedTrainer faulty(MakeStub, &clients, faulty_options);
  const FederatedRunResult result = faulty.Run();
  const double faulty_w =
      dynamic_cast<StubModel*>(faulty.global_model())->weight();

  // Both land near the mean client target (driver ids 0..3).
  EXPECT_NEAR(clean_w, 1.5, 0.3);
  EXPECT_NEAR(faulty_w, clean_w, 0.3);
  // The schedule actually injected and the server actually recovered.
  EXPECT_GT(result.faults.drops + result.faults.retries, 0);
  EXPECT_GT(result.faults.MeanCohortFraction(), 0.5);
}

TEST(FaultTolerantTrainer, CorruptedUploadsNeverPoisonTheGlobalModel) {
  auto clients = MakeClients(4, 33);
  FederatedTrainerOptions options = BaseOptions(20);
  options.faults.corruption_rate = 0.5;
  // Norm bound + reject: scale/garbage corruption (finite but huge) is
  // screened out alongside NaN/Inf.
  options.tolerance.screen.max_delta_norm = 1.0;
  options.tolerance.screen.norm_policy = ScreenPolicy::kReject;
  FederatedTrainer trainer(MakeStub, &clients, options);
  const FederatedRunResult result = trainer.Run();

  EXPECT_GT(result.faults.rejected_uploads, 0);
  const auto flat = trainer.global_model()->params().Flatten();
  for (nn::Scalar x : flat) EXPECT_TRUE(std::isfinite(x));
  // Uploads were rejected, never averaged: the weight stays in the sane
  // range spanned by honest client targets.
  const double w = dynamic_cast<StubModel*>(trainer.global_model())->weight();
  EXPECT_GT(w, -2.0);
  EXPECT_LT(w, 5.0);
}

TEST(FaultTolerantTrainer, QuorumMissKeepsPreviousGlobalModel) {
  auto clients = MakeClients(3, 35);
  FederatedTrainerOptions options = BaseOptions(3);
  options.faults.dropout_rate = 1.0;  // nobody ever reports
  options.tolerance.retry.max_retries = 1;
  FederatedTrainer trainer(MakeStub, &clients, options);
  const double before =
      dynamic_cast<StubModel*>(trainer.global_model())->weight();
  const FederatedRunResult result = trainer.Run();
  const double after =
      dynamic_cast<StubModel*>(trainer.global_model())->weight();

  EXPECT_DOUBLE_EQ(before, after);
  EXPECT_EQ(result.faults.quorum_misses, 3);
  EXPECT_EQ(result.faults.reporting_clients, 0);
  EXPECT_EQ(result.faults.drops, 3 * 3);
  EXPECT_EQ(result.faults.retries, 3 * 3);
  EXPECT_GT(result.faults.simulated_backoff_s, 0.0);
  for (const RoundRecord& record : result.history) {
    EXPECT_FALSE(record.quorum_met);
    EXPECT_EQ(record.reporting, 0);
  }
}

TEST(FaultTolerantTrainer, QuorumFractionGatesSmallCohorts) {
  auto clients = MakeClients(4, 37);
  FederatedTrainerOptions options = BaseOptions(6);
  options.faults.dropout_rate = 0.6;
  options.tolerance.quorum_fraction = 0.75;  // need 3 of 4 reporting
  FederatedTrainer trainer(MakeStub, &clients, options);
  const FederatedRunResult result = trainer.Run();
  for (const RoundRecord& record : result.history) {
    EXPECT_EQ(record.quorum_met, record.reporting >= 3);
  }
  EXPECT_GT(result.faults.quorum_misses, 0);
}

TEST(FaultTolerantTrainer, StragglersAreCutOffAtTheDeadline) {
  auto clients = MakeClients(3, 39);
  FederatedTrainerOptions options = BaseOptions(1);
  options.faults.straggler_rate = 1.0;
  options.faults.straggler_slowdown_mean = 1000.0;
  // Legacy accounting: uplink counts model uploads only. (Under the
  // framed transport stragglers still send their pull-request frame.)
  options.transport.enabled = false;
  FederatedTrainer trainer(MakeStub, &clients, options);
  const FederatedRunResult result = trainer.Run();
  EXPECT_EQ(result.faults.stragglers, 3);
  EXPECT_EQ(result.faults.reporting_clients, 0);
  EXPECT_EQ(result.comm.bytes_uplink, 0);  // cut off before upload
  EXPECT_GT(result.comm.bytes_downlink, 0);
  EXPECT_EQ(result.faults.quorum_misses, 1);
}

TEST(FaultTolerantTrainer, RobustAggregatorsAreSelectableAndConverge) {
  for (const AggregatorPolicy policy :
       {AggregatorPolicy::kMedian, AggregatorPolicy::kTrimmedMean}) {
    auto clients = MakeClients(4, 41);
    FederatedTrainerOptions options = BaseOptions();
    options.tolerance.aggregator.policy = policy;
    options.tolerance.aggregator.trim_fraction = 0.25;
    FederatedTrainer trainer(MakeStub, &clients, options);
    trainer.Run();
    const double w = dynamic_cast<StubModel*>(trainer.global_model())->weight();
    // Median/trimmed-mean of per-client targets {0,1,2,3} also sits near
    // the centre.
    EXPECT_NEAR(w, 1.5, 0.6) << AggregatorPolicyName(policy);
  }
}

TEST(FaultTolerantTrainer, IdenticalSeedsGiveIdenticalFaultTelemetry) {
  auto run_once = [] {
    auto clients = MakeClients(4, 43);
    FederatedTrainerOptions options = BaseOptions(8);
    options.faults = LossyConfig();
    options.tolerance.retry.max_retries = 2;
    FederatedTrainer trainer(MakeStub, &clients, options);
    return trainer.Run();
  };
  const FederatedRunResult a = run_once();
  const FederatedRunResult b = run_once();
  EXPECT_EQ(a.faults.drops, b.faults.drops);
  EXPECT_EQ(a.faults.retries, b.faults.retries);
  EXPECT_EQ(a.faults.stragglers, b.faults.stragglers);
  EXPECT_EQ(a.faults.rejected_uploads, b.faults.rejected_uploads);
  EXPECT_EQ(a.faults.quorum_misses, b.faults.quorum_misses);
  EXPECT_DOUBLE_EQ(a.faults.simulated_backoff_s, b.faults.simulated_backoff_s);
  ASSERT_EQ(a.history.size(), b.history.size());
  for (size_t r = 0; r < a.history.size(); ++r) {
    EXPECT_EQ(a.history[r].drops, b.history[r].drops);
    EXPECT_EQ(a.history[r].reporting, b.history[r].reporting);
    EXPECT_DOUBLE_EQ(a.history[r].mean_train_loss,
                     b.history[r].mean_train_loss);
  }
}

// ---------------------------------------------------------------------
// Acceptance: a 10-round LightTR run under 30% dropout + occasional
// corrupted uploads completes, rejects every non-finite upload, and
// lands within 10% relative validation accuracy of the fault-free run
// with the same seed.

eval::MethodResult RunLightTr(const std::vector<traj::ClientDataset>& clients,
                              const eval::ExperimentEnv& env,
                              bool with_faults, AggregatorPolicy policy) {
  eval::MethodRunOptions options;
  options.fed.rounds = 10;
  options.fed.local_epochs = 1;
  options.max_test_trajectories = 12;
  if (with_faults) {
    options.fed.faults.dropout_rate = 0.3;
    options.fed.faults.corruption_rate = 0.1;
    options.fed.tolerance.retry.max_retries = 2;
    options.fed.tolerance.screen.max_delta_norm = 50.0;
    options.fed.tolerance.screen.norm_policy = ScreenPolicy::kReject;
    options.fed.tolerance.aggregator.policy = policy;
    options.fed.tolerance.aggregator.trim_fraction = 0.25;
  }
  return eval::RunFederatedMethod(env, baselines::ModelKind::kLightTr, clients,
                                  options);
}

TEST(FaultTolerantTrainer, LightTrSurvivesLossyRoundsNearBaseline) {
  eval::ExperimentEnv env(6, 6, 17);
  traj::WorkloadProfile profile = traj::TdriveLikeProfile();
  profile.trajectories_per_client = 8;
  traj::FederatedWorkloadOptions workload;
  workload.num_clients = 4;
  workload.keep_ratio = 0.25;
  const auto clients = env.MakeWorkload(profile, workload, 19);

  const eval::MethodResult clean =
      RunLightTr(clients, env, false, AggregatorPolicy::kMean);
  const double clean_acc = clean.run.history.back().global_valid_accuracy;
  ASSERT_GT(clean_acc, 0.0);

  for (const AggregatorPolicy policy :
       {AggregatorPolicy::kMean, AggregatorPolicy::kMedian,
        AggregatorPolicy::kTrimmedMean}) {
    const eval::MethodResult faulty = RunLightTr(clients, env, true, policy);
    ASSERT_EQ(faulty.run.history.size(), 10u) << AggregatorPolicyName(policy);
    // Faults were injected and handled, and nothing non-finite survived
    // into the aggregate.
    EXPECT_GT(faulty.run.faults.drops + faulty.run.faults.retries, 0)
        << AggregatorPolicyName(policy);
    for (const RoundRecord& record : faulty.run.history) {
      EXPECT_LE(record.reporting, record.sampled);
    }
    const double faulty_acc = faulty.run.history.back().global_valid_accuracy;
    EXPECT_NEAR(faulty_acc, clean_acc, 0.1 * clean_acc)
        << AggregatorPolicyName(policy);
  }
}

}  // namespace
}  // namespace lighttr::fl
