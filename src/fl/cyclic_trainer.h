// Serverless cyclic training — the w/o_FL ablation of paper Fig. 7:
// clients train locally and pass their parameters around a ring instead
// of aggregating on a central server.
#ifndef LIGHTTR_FL_CYCLIC_TRAINER_H_
#define LIGHTTR_FL_CYCLIC_TRAINER_H_

#include <memory>
#include <vector>

#include "fl/comm_stats.h"
#include "fl/recovery_model.h"
#include "nn/optimizer.h"
#include "traj/workload.h"

namespace lighttr::fl {

/// Options for CyclicExchangeTrainer.
struct CyclicTrainerOptions {
  int rounds = 10;
  int local_epochs = 2;
  double learning_rate = 1e-3;
  uint64_t seed = 7;
};

/// Ring-exchange decentralized training without a central server.
class CyclicExchangeTrainer {
 public:
  CyclicExchangeTrainer(ModelFactory factory,
                        const std::vector<traj::ClientDataset>* clients,
                        CyclicTrainerOptions options);

  /// Runs the configured rounds; each round every client trains locally
  /// and then adopts the parameters of its ring predecessor.
  CommStats Run();

  /// The model that finished the final round (used for evaluation).
  RecoveryModel* final_model() { return models_.back().get(); }

 private:
  const std::vector<traj::ClientDataset>* clients_;
  CyclicTrainerOptions options_;
  Rng rng_;
  std::vector<std::unique_ptr<RecoveryModel>> models_;
  std::vector<std::unique_ptr<nn::Optimizer>> optimizers_;
};

}  // namespace lighttr::fl

#endif  // LIGHTTR_FL_CYCLIC_TRAINER_H_
