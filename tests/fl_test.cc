// Tests for the federated substrate: local training, FedAvg rounds,
// client sampling, communication accounting, and cyclic exchange.
#include <gtest/gtest.h>

#include <memory>

#include "fl/cyclic_trainer.h"
#include "fl/federated_trainer.h"
#include "fl/local_trainer.h"
#include "fl/transport/wire.h"
#include "nn/losses.h"
#include "nn/ops.h"
#include "roadnet/generators.h"
#include "traj/downsample.h"
#include "traj/generator.h"
#include "traj/workload.h"

namespace lighttr::fl {
namespace {

// A minimal RecoveryModel: a single scalar parameter w trained toward a
// per-trajectory constant (driver_id), recovery reported as segment 0
// with ratio clamp(w).
class StubModel : public RecoveryModel {
 public:
  explicit StubModel(Rng* rng) {
    w_ = nn::Tensor::Variable(
        nn::Matrix::Full(1, 1, rng != nullptr ? rng->Uniform(-1, 1) : 0.0));
    params_.Register("w", w_);
  }

  const std::string& name() const override { return name_; }
  nn::ParameterSet& params() override { return params_; }

  ForwardResult Forward(const traj::IncompleteTrajectory& trajectory,
                        bool /*training*/, Rng* /*rng*/) override {
    nn::Matrix target(1, 1);
    target(0, 0) = static_cast<nn::Scalar>(trajectory.ground_truth.driver_id);
    ForwardResult result;
    result.loss = nn::MseLoss(w_, target);
    result.representation = w_;
    return result;
  }

  std::vector<roadnet::PointPosition> Recover(
      const traj::IncompleteTrajectory& trajectory) override {
    std::vector<roadnet::PointPosition> out(trajectory.size());
    for (size_t t = 0; t < trajectory.size(); ++t) {
      out[t] = trajectory.observed[t]
                   ? trajectory.ground_truth.points[t].position
                   : roadnet::PointPosition{0, 0.0};
    }
    return out;
  }

  double weight() const { return w_.value()(0, 0); }

 private:
  std::string name_ = "Stub";
  nn::ParameterSet params_;
  nn::Tensor w_;
};

std::vector<traj::ClientDataset> MakeClients(int n, uint64_t seed,
                                             int per_client = 6) {
  Rng rng(seed);
  roadnet::CityGridOptions options;
  options.rows = 6;
  options.cols = 6;
  static roadnet::RoadNetwork net = roadnet::GenerateCityGrid(options, &rng);
  traj::WorkloadProfile profile = traj::TdriveLikeProfile();
  profile.trajectories_per_client = per_client;
  traj::FederatedWorkloadOptions workload;
  workload.num_clients = n;
  return traj::GenerateFederatedWorkload(net, profile, workload, &rng);
}

TEST(TrainLocal, ReducesLossOnStub) {
  auto clients = MakeClients(1, 1);
  Rng rng(2);
  StubModel model(&rng);
  nn::AdamOptimizer optimizer(0.05);
  LocalTrainOptions options;
  options.epochs = 1;
  Rng train_rng(3);
  const double first =
      TrainLocal(&model, &optimizer, clients[0].train, options, &train_rng);
  options.epochs = 20;
  const double later =
      TrainLocal(&model, &optimizer, clients[0].train, options, &train_rng);
  EXPECT_LT(later, first);
}

TEST(TrainLocal, DistillationPullsTowardTeacher) {
  auto clients = MakeClients(1, 4);
  Rng rng(5);
  StubModel student(&rng);
  StubModel teacher(nullptr);
  // Teacher fixed at w = driver_id, i.e., already optimal.
  teacher.params().AssignFlat(
      {static_cast<nn::Scalar>(clients[0].train[0].ground_truth.driver_id)});

  nn::AdamOptimizer optimizer(0.05);
  LocalTrainOptions options;
  options.epochs = 30;
  options.teacher = &teacher;
  options.lambda = 10.0;
  Rng train_rng(6);
  TrainLocal(&student, &optimizer, clients[0].train, options, &train_rng);
  EXPECT_NEAR(student.weight(), teacher.weight(), 0.2);
}

TEST(EvaluateSegmentAccuracy, CountsOnlyMissingPoints) {
  auto clients = MakeClients(1, 7);
  Rng rng(8);
  StubModel model(&rng);
  // The stub predicts segment 0 everywhere; accuracy equals the share
  // of missing points whose truth is segment 0.
  int64_t missing = 0;
  int64_t zeros = 0;
  for (const auto& t : clients[0].test) {
    for (size_t i = 0; i < t.size(); ++i) {
      if (t.observed[i]) continue;
      ++missing;
      zeros += t.ground_truth.points[i].position.segment == 0 ? 1 : 0;
    }
  }
  const double accuracy = EvaluateSegmentAccuracy(&model, clients[0].test);
  ASSERT_GT(missing, 0);
  EXPECT_NEAR(accuracy, static_cast<double>(zeros) / missing, 1e-12);
}

TEST(FederatedTrainer, AggregatesTowardClientMean) {
  // Each client pulls w toward its driver_id (= client index); FedAvg
  // must land near the mean of the client targets.
  auto clients = MakeClients(4, 9);
  FederatedTrainerOptions options;
  options.rounds = 30;
  options.local_epochs = 2;
  options.learning_rate = 0.05;
  FederatedTrainer trainer(
      [](Rng* rng) { return std::make_unique<StubModel>(rng); }, &clients,
      options);
  trainer.Run();
  auto* global = dynamic_cast<StubModel*>(trainer.global_model());
  ASSERT_NE(global, nullptr);
  EXPECT_NEAR(global->weight(), (0 + 1 + 2 + 3) / 4.0, 0.3);
}

TEST(FederatedTrainer, CommAccounting) {
  auto clients = MakeClients(5, 10);
  FederatedTrainerOptions options;
  options.rounds = 3;
  options.local_epochs = 1;
  options.client_fraction = 0.6;  // -> 3 of 5 clients per round
  // Legacy estimated accounting (one abstract message each way per
  // contact); kept as the bench baseline alongside the framed transport.
  options.transport.enabled = false;
  FederatedTrainer trainer(
      [](Rng* rng) { return std::make_unique<StubModel>(rng); }, &clients,
      options);
  const FederatedRunResult result = trainer.Run();
  const int64_t wire = trainer.global_model()->params().WireBytes();
  EXPECT_EQ(result.comm.rounds, 3);
  EXPECT_EQ(result.comm.messages, 3 * 3 * 2);
  EXPECT_EQ(result.comm.bytes_downlink, 3 * 3 * wire);
  EXPECT_EQ(result.comm.bytes_uplink, 3 * 3 * wire);
  EXPECT_EQ(result.history.size(), 3u);
}

TEST(FederatedTrainer, TransportCommAccountingMeasuresEncodedFrames) {
  // With the framed transport on (the default), comm stats are measured
  // from the bytes actually put on the wire: four frames per contact
  // (pull request, pull reply, update push, push ack), sized by the
  // encoder rather than estimated from WireBytes().
  auto clients = MakeClients(5, 10);
  FederatedTrainerOptions options;
  options.rounds = 3;
  options.local_epochs = 1;
  options.client_fraction = 0.6;  // -> 3 of 5 clients per round
  FederatedTrainer trainer(
      [](Rng* rng) { return std::make_unique<StubModel>(rng); }, &clients,
      options);
  const FederatedRunResult result = trainer.Run();

  const int64_t contacts = 3 * 3;
  using namespace lighttr::fl::transport;  // NOLINT
  ModelPullRequest req;
  const auto pull_request_frame =
      EncodeFrame(FrameType::kModelPullRequest, EncodeModelPullRequest(req));
  ModelPullReply reply;
  reply.model_blob = trainer.global_model()->params().Serialize();
  const auto pull_reply_frame =
      EncodeFrame(FrameType::kModelPullReply, EncodeModelPullReply(reply));
  UpdatePush push;
  push.kind = PayloadKind::kRawF64;
  push.raw.assign(
      static_cast<size_t>(trainer.global_model()->params().NumScalars()), 0.0);
  const auto push_frame =
      EncodeFrame(FrameType::kUpdatePush, EncodeUpdatePush(push));
  PushAck ack;
  const auto ack_frame = EncodeFrame(FrameType::kPushAck, EncodePushAck(ack));

  EXPECT_EQ(result.comm.rounds, 3);
  EXPECT_EQ(result.comm.messages, contacts * 4);
  EXPECT_EQ(result.comm.bytes_uplink,
            contacts * static_cast<int64_t>(pull_request_frame.size() +
                                            push_frame.size()));
  EXPECT_EQ(result.comm.bytes_downlink,
            contacts * static_cast<int64_t>(pull_reply_frame.size() +
                                            ack_frame.size()));
  // A clean channel produces no network-layer incidents.
  EXPECT_EQ(result.faults.net_retries, 0);
  EXPECT_EQ(result.faults.net_timeouts, 0);
  EXPECT_EQ(result.faults.net_crc_drops, 0);
  EXPECT_EQ(result.faults.net_dedup_drops, 0);
  EXPECT_EQ(result.faults.net_lost, 0);
}

TEST(FederatedTrainer, TransportMatchesLegacyModelTrajectory) {
  // The transport is a faithful pipe: on a clean channel the recovered
  // global model is bitwise identical to the legacy in-process path.
  auto run = [](bool enabled) {
    auto clients = MakeClients(4, 21);
    FederatedTrainerOptions options;
    options.rounds = 4;
    options.local_epochs = 1;
    options.transport.enabled = enabled;
    FederatedTrainer trainer(
        [](Rng* rng) { return std::make_unique<StubModel>(rng); }, &clients,
        options);
    trainer.Run();
    return trainer.global_model()->params().Serialize();
  };
  EXPECT_EQ(run(true), run(false));
}

TEST(FederatedTrainer, FractionOneUsesAllClients) {
  auto clients = MakeClients(3, 11);
  FederatedTrainerOptions options;
  options.rounds = 1;
  FederatedTrainer trainer(
      [](Rng* rng) { return std::make_unique<StubModel>(rng); }, &clients,
      options);
  const FederatedRunResult result = trainer.Run();
  // Four transport frames (pull request/reply, push, ack) per contact.
  EXPECT_EQ(result.comm.messages, 3 * 4);
}

TEST(FederatedTrainer, FaultFreeRunHasCleanTelemetry) {
  auto clients = MakeClients(4, 13);
  FederatedTrainerOptions options;
  options.rounds = 2;
  options.local_epochs = 1;
  FederatedTrainer trainer(
      [](Rng* rng) { return std::make_unique<StubModel>(rng); }, &clients,
      options);
  const FederatedRunResult result = trainer.Run();
  EXPECT_EQ(result.faults.drops, 0);
  EXPECT_EQ(result.faults.retries, 0);
  EXPECT_EQ(result.faults.stragglers, 0);
  EXPECT_EQ(result.faults.rejected_uploads, 0);
  EXPECT_EQ(result.faults.quorum_misses, 0);
  EXPECT_DOUBLE_EQ(result.faults.MeanCohortFraction(), 1.0);
  for (const RoundRecord& record : result.history) {
    EXPECT_EQ(record.sampled, 4);
    EXPECT_EQ(record.reporting, 4);
    EXPECT_TRUE(record.quorum_met);
  }
}

TEST(FederatedTrainer, DropoutAccountingCountsEveryContactAttempt) {
  auto clients = MakeClients(2, 14);
  FederatedTrainerOptions options;
  options.rounds = 1;
  options.local_epochs = 1;
  options.faults.dropout_rate = 1.0;
  options.tolerance.retry.max_retries = 2;
  // Legacy estimated accounting: the model broadcast is charged per
  // contact attempt even though the client never answers.
  options.transport.enabled = false;
  FederatedTrainer trainer(
      [](Rng* rng) { return std::make_unique<StubModel>(rng); }, &clients,
      options);
  const FederatedRunResult result = trainer.Run();
  const int64_t wire = trainer.global_model()->params().WireBytes();
  // Each client: initial contact + 2 retries, all downlink, no upload.
  EXPECT_EQ(result.comm.messages, 2 * 3);
  EXPECT_EQ(result.comm.bytes_downlink, 2 * 3 * wire);
  EXPECT_EQ(result.comm.bytes_uplink, 0);
  EXPECT_EQ(result.faults.drops, 2);
  EXPECT_EQ(result.faults.retries, 2 * 2);
}

TEST(FederatedTrainer, DroppedOutClientsPutNoFramesOnTheWire) {
  // Under the framed transport a dropped-out client never initiates its
  // pull, so — unlike the legacy estimate — nothing crosses the wire.
  auto clients = MakeClients(2, 14);
  FederatedTrainerOptions options;
  options.rounds = 1;
  options.local_epochs = 1;
  options.faults.dropout_rate = 1.0;
  options.tolerance.retry.max_retries = 2;
  FederatedTrainer trainer(
      [](Rng* rng) { return std::make_unique<StubModel>(rng); }, &clients,
      options);
  const FederatedRunResult result = trainer.Run();
  EXPECT_EQ(result.comm.messages, 0);
  EXPECT_EQ(result.comm.bytes_downlink, 0);
  EXPECT_EQ(result.comm.bytes_uplink, 0);
  EXPECT_EQ(result.faults.drops, 2);
  EXPECT_EQ(result.faults.retries, 2 * 2);
}

TEST(FederatedTrainer, ValidationPoolSpansAllClients) {
  // 8 clients x ~2 validation trajectories: the old pool (first <=40
  // from the first clients in order) always ignored later clients; the
  // sampled pool must produce a valid accuracy without crashing even
  // when the pool spans everyone.
  auto clients = MakeClients(8, 15, /*per_client=*/10);
  size_t total_valid = 0;
  for (const auto& client : clients) total_valid += client.valid.size();
  ASSERT_GT(total_valid, 0u);
  FederatedTrainerOptions options;
  options.rounds = 1;
  options.local_epochs = 1;
  FederatedTrainer trainer(
      [](Rng* rng) { return std::make_unique<StubModel>(rng); }, &clients,
      options);
  const FederatedRunResult result = trainer.Run();
  ASSERT_EQ(result.history.size(), 1u);
  EXPECT_GE(result.history[0].global_valid_accuracy, 0.0);
  EXPECT_LE(result.history[0].global_valid_accuracy, 1.0);
}

TEST(CommStats, SimulatedSeconds) {
  CommStats stats;
  stats.bytes_downlink = 1000;
  stats.bytes_uplink = 1000;
  stats.messages = 4;
  EXPECT_NEAR(stats.SimulatedSeconds(/*bytes_per_second=*/1000.0,
                                     /*latency=*/0.5),
              2.0 + 2.0, 1e-12);
}

TEST(CyclicTrainer, PropagatesParametersAroundRing) {
  auto clients = MakeClients(3, 12);
  CyclicTrainerOptions options;
  options.rounds = 2;
  options.local_epochs = 1;
  options.learning_rate = 0.05;
  CyclicExchangeTrainer trainer(
      [](Rng* rng) { return std::make_unique<StubModel>(rng); }, &clients,
      options);
  const CommStats comm = trainer.Run();
  EXPECT_EQ(comm.rounds, 2);
  EXPECT_EQ(comm.messages, 2 * 3);
  EXPECT_NE(trainer.final_model(), nullptr);
}

}  // namespace
}  // namespace lighttr::fl
