file(REMOVE_RECURSE
  "liblighttr_mapmatch.a"
)
