// FC+FL baseline (paper Sec. V-A3): stacked fully-connected layers
// applied per step, with full-vocabulary segment prediction and no
// temporal recurrence — the weakest baseline in Table IV.
#ifndef LIGHTTR_BASELINES_FC_MODEL_H_
#define LIGHTTR_BASELINES_FC_MODEL_H_

#include <memory>
#include <string>
#include <vector>

#include "fl/recovery_model.h"
#include "nn/layers.h"
#include "traj/encoding.h"

namespace lighttr::baselines {

/// Configuration for FcModel.
struct FcConfig {
  size_t hidden_dim = 64;
  size_t num_layers = 2;
  double dropout = 0.2;
  double mu = 1.0;
};

/// Per-step MLP recovery model (no sequence modeling).
class FcModel : public fl::RecoveryModel {
 public:
  FcModel(const traj::TrajectoryEncoder* encoder, const FcConfig& config,
          Rng* rng);

  const std::string& name() const override { return name_; }
  nn::ParameterSet& params() override { return params_; }

  fl::ForwardResult Forward(const traj::IncompleteTrajectory& trajectory,
                            bool training, Rng* rng) override;

  std::vector<roadnet::PointPosition> Recover(
      const traj::IncompleteTrajectory& trajectory) override;

 private:
  /// Hidden activations of the missing steps, [M, hidden], plus the
  /// missing step indices.
  nn::Tensor HiddenForMissing(const traj::IncompleteTrajectory& trajectory,
                              bool training, Rng* rng,
                              std::vector<size_t>* missing) const;

  std::string name_ = "FC+FL";
  const traj::TrajectoryEncoder* encoder_;
  FcConfig config_;
  nn::ParameterSet params_;
  std::vector<std::unique_ptr<nn::Dense>> layers_;
  std::unique_ptr<nn::Dense> seg_head_;    // hidden -> num_segments
  std::unique_ptr<nn::Dense> ratio_head_;  // hidden -> 1
};

}  // namespace lighttr::baselines

#endif  // LIGHTTR_BASELINES_FC_MODEL_H_
