
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/roadnet/astar.cc" "src/roadnet/CMakeFiles/lighttr_roadnet.dir/astar.cc.o" "gcc" "src/roadnet/CMakeFiles/lighttr_roadnet.dir/astar.cc.o.d"
  "/root/repo/src/roadnet/generators.cc" "src/roadnet/CMakeFiles/lighttr_roadnet.dir/generators.cc.o" "gcc" "src/roadnet/CMakeFiles/lighttr_roadnet.dir/generators.cc.o.d"
  "/root/repo/src/roadnet/road_network.cc" "src/roadnet/CMakeFiles/lighttr_roadnet.dir/road_network.cc.o" "gcc" "src/roadnet/CMakeFiles/lighttr_roadnet.dir/road_network.cc.o.d"
  "/root/repo/src/roadnet/segment_index.cc" "src/roadnet/CMakeFiles/lighttr_roadnet.dir/segment_index.cc.o" "gcc" "src/roadnet/CMakeFiles/lighttr_roadnet.dir/segment_index.cc.o.d"
  "/root/repo/src/roadnet/shortest_path.cc" "src/roadnet/CMakeFiles/lighttr_roadnet.dir/shortest_path.cc.o" "gcc" "src/roadnet/CMakeFiles/lighttr_roadnet.dir/shortest_path.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/geo/CMakeFiles/lighttr_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/lighttr_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
