#include "eval/harness.h"

#include "common/check.h"
#include "common/stopwatch.h"
#include "baselines/centralized_trainer.h"
#include "fl/local_trainer.h"
#include "lighttr/pipeline.h"
#include "roadnet/generators.h"
#include "nn/flops.h"
#include "nn/optimizer.h"

namespace lighttr::eval {

ExperimentEnv::ExperimentEnv(int rows, int cols, uint64_t seed) {
  Rng rng(seed);
  roadnet::CityGridOptions city;
  city.rows = rows;
  city.cols = cols;
  network_ = roadnet::GenerateCityGrid(city, &rng);
  index_ = std::make_unique<roadnet::SegmentIndex>(network_);
  encoder_ = std::make_unique<traj::TrajectoryEncoder>(network_, *index_);
}

std::vector<traj::ClientDataset> ExperimentEnv::MakeWorkload(
    const traj::WorkloadProfile& profile,
    const traj::FederatedWorkloadOptions& options, uint64_t seed) const {
  Rng rng(seed);
  return traj::GenerateFederatedWorkload(network_, profile, options, &rng);
}

std::vector<traj::IncompleteTrajectory> ExperimentEnv::PooledTestSet(
    const std::vector<traj::ClientDataset>& clients, int max_trajectories) {
  std::vector<traj::IncompleteTrajectory> pooled;
  for (const traj::ClientDataset& client : clients) {
    for (const auto& trajectory : client.test) {
      if (static_cast<int>(pooled.size()) >= max_trajectories) return pooled;
      pooled.push_back(trajectory);
    }
  }
  return pooled;
}

MethodRunOptions DefaultRunOptions(const ExperimentScale& scale) {
  MethodRunOptions options;
  options.fed.rounds = scale.rounds;
  options.fed.local_epochs = scale.local_epochs;
  // All methods train with the same rate; 3e-3 compensates for the
  // scaled-down round budget (the paper trains 50 epochs at 1e-3).
  options.fed.learning_rate = 3e-3;
  options.fed.seed = scale.seed;
  options.teacher.learning_rate = options.fed.learning_rate;
  options.teacher.cycles = scale.teacher_cycles;
  options.max_test_trajectories = scale.max_test_trajectories;
  return options;
}

traj::FederatedWorkloadOptions DefaultWorkloadOptions(
    const ExperimentScale& scale, double keep_ratio) {
  traj::FederatedWorkloadOptions options;
  options.num_clients = scale.num_clients;
  options.keep_ratio = keep_ratio;
  return options;
}

traj::WorkloadProfile ScaledProfile(traj::WorkloadProfile profile,
                                    const ExperimentScale& scale) {
  profile.trajectories_per_client = scale.trajectories_per_client;
  return profile;
}

void ProfileModel(const ExperimentEnv& env, baselines::ModelKind kind,
                  const std::vector<traj::IncompleteTrajectory>& sample,
                  MethodResult* result) {
  LIGHTTR_CHECK(result != nullptr);
  LIGHTTR_CHECK(!sample.empty());
  Rng rng(123);
  auto model = baselines::MakeFactory(kind, &env.encoder())(&rng);
  result->parameters = model->params().NumScalars();

  // Forward FLOPs of one recovery (Fig. 5b).
  {
    nn::ScopedFlopCount counter;
    (void)model->Recover(sample.front());
    result->flops_per_recovery = counter.Elapsed();
  }

  // Wall seconds of one local training epoch over the sample (Fig. 5a).
  nn::AdamOptimizer optimizer(1e-3);
  fl::LocalTrainOptions local;
  local.epochs = 1;
  Rng train_rng(321);
  Stopwatch watch;
  fl::TrainLocal(model.get(), &optimizer, sample, local, &train_rng);
  result->train_epoch_seconds = watch.ElapsedSeconds();
}

MethodResult RunFederatedMethod(
    const ExperimentEnv& env, baselines::ModelKind kind,
    const std::vector<traj::ClientDataset>& clients,
    const MethodRunOptions& options) {
  MethodResult result;
  result.method = baselines::ModelKindName(kind);
  Stopwatch watch;

  const std::vector<traj::IncompleteTrajectory> test =
      ExperimentEnv::PooledTestSet(clients, options.max_test_trajectories);

  if (kind == baselines::ModelKind::kLightTr) {
    core::LightTrOptions pipeline_options;
    pipeline_options.teacher = options.teacher;
    pipeline_options.meta = options.meta;
    pipeline_options.federated = options.fed;
    pipeline_options.use_teacher = options.lighttr_use_teacher;
    core::LightTrPipeline pipeline(&env.encoder(), &clients,
                                   pipeline_options);
    core::LightTrResult trained = pipeline.Train();
    result.run = std::move(trained.federated);
    result.metrics =
        EvaluateRecovery(pipeline.global_model(), env.network(), test);
  } else {
    fl::FederatedTrainerOptions fed = options.fed;
    if (kind == baselines::ModelKind::kFc ||
        kind == baselines::ModelKind::kRnn) {
      // Per-baseline tuning: the full-vocabulary baselines need a larger
      // step size to make progress within the scaled-down round budget
      // (each method is tuned for its best setting, as in Sec. V-A4).
      fed.learning_rate *= 3.0;
    }
    fl::FederatedTrainer trainer(baselines::MakeFactory(kind, &env.encoder()),
                                 &clients, fed);
    result.run = trainer.Run();
    result.metrics =
        EvaluateRecovery(trainer.global_model(), env.network(), test);
  }
  result.wall_seconds = watch.ElapsedSeconds();
  return result;
}

MethodResult RunCentralizedMethod(
    const ExperimentEnv& env, baselines::ModelKind kind,
    const std::vector<traj::ClientDataset>& clients, int epochs,
    double learning_rate, int max_test_trajectories, uint64_t seed) {
  MethodResult result;
  result.method = baselines::ModelKindName(kind) + " (centralized)";
  Stopwatch watch;
  const std::vector<traj::IncompleteTrajectory> train =
      traj::MergeTrainSets(clients);
  baselines::CentralizedOptions options;
  options.epochs = epochs;
  options.learning_rate = learning_rate;
  options.seed = seed;
  auto model = baselines::TrainCentralized(
      baselines::MakeFactory(kind, &env.encoder()), train, options);
  const std::vector<traj::IncompleteTrajectory> test =
      ExperimentEnv::PooledTestSet(clients, max_test_trajectories);
  result.metrics = EvaluateRecovery(model.get(), env.network(), test);
  result.wall_seconds = watch.ElapsedSeconds();
  return result;
}

}  // namespace lighttr::eval
