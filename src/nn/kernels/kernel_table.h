// Internal dispatch table of the kernel layer (see kernels.h for the
// public API). Each ISA variant fills one static KernelTable; dispatch
// is a single atomic pointer swap at activation time, so the hot path
// pays one relaxed load per call and never branches on CPUID.
//
// Internal header: only kernels.cc and kernels_<isa>.cc may include it.
#ifndef LIGHTTR_NN_KERNELS_KERNEL_TABLE_H_
#define LIGHTTR_NN_KERNELS_KERNEL_TABLE_H_

#include <cstddef>

#include "nn/arena.h"

namespace lighttr::nn::kernels {

/// Function-pointer bundle for one ISA variant. Contract shared by all
/// entries: accumulation (`c +=`), row-major operands, and a per-output
/// floating-point reduction order fixed by the implementation alone —
/// never by thread count or data values (data-dependent skips are
/// allowed only where they cannot change emitted values, e.g. the
/// scalar zero-skip: adding av * b[j] with av == 0 is an exact no-op
/// for finite b).
struct KernelTable {
  /// Blocked GEMM core over C rows [row_begin, row_end):
  /// c += a * b with a [m,k], b [k,n]. Handles its own cache blocking;
  /// the caller may split rows across threads freely (per-row order is
  /// invariant to the split).
  void (*gemm_rows_blocked)(const Scalar* a, const Scalar* b, Scalar* c,
                            size_t k, size_t n, size_t row_begin,
                            size_t row_end);
  /// Small-product trio (below the blocked-path FLOP threshold).
  /// ldc is the row stride of c (>= n), letting the fused GRU step
  /// write gate columns into one packed pre-activation buffer.
  void (*gemm_small_nn)(const Scalar* a, const Scalar* b, Scalar* c, size_t m,
                        size_t k, size_t n, size_t ldc);
  /// c += a^T * b with a [k,m], b [k,n], c [m,n].
  void (*gemm_small_ta)(const Scalar* a, const Scalar* b, Scalar* c, size_t m,
                        size_t k, size_t n);
  /// c += a * b^T with a [m,k], b [n,k], c [m,n].
  void (*gemm_small_tb)(const Scalar* a, const Scalar* b, Scalar* c, size_t m,
                        size_t k, size_t n);
  /// x[i] = 1 / (1 + exp(-x[i])).
  void (*sigmoid_inplace)(Scalar* x, size_t n);
  /// x[i] = tanh(x[i]).
  void (*tanh_inplace)(Scalar* x, size_t n);
};

/// The portable reference table (always available; bit-identical to the
/// pre-kernel-layer code paths).
const KernelTable& ScalarKernelTable();

/// The AVX2+FMA table, or nullptr when this binary/CPU cannot run it.
/// Defined in kernels_avx2.cc — the single TU compiled with -mavx2
/// -mfma and the only file allowed to include <immintrin.h> (enforced
/// by the no-raw-intrinsics lint rule).
const KernelTable* Avx2KernelTable();

}  // namespace lighttr::nn::kernels

#endif  // LIGHTTR_NN_KERNELS_KERNEL_TABLE_H_
