// Server-side upload screening and robust aggregation.
//
// The bare FedAvg mean (Algorithm 3 line 11) is a single point of
// failure: one NaN scalar poisons every weight of the global model, and
// one scaled upload drags the mean arbitrarily far. This module screens
// uploads before they enter aggregation (finite check + delta-norm
// clip/reject) and offers robust alternatives to the mean (coordinate-
// wise median, trimmed mean) that tolerate a minority of damaged
// uploads that pass screening.
#ifndef LIGHTTR_FL_AGGREGATION_H_
#define LIGHTTR_FL_AGGREGATION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "nn/arena.h"

namespace lighttr::fl {

/// What to do with an upload whose delta norm exceeds the bound.
enum class ScreenPolicy {
  kClip = 0,  // scale the delta back to the bound, keep the upload
  kReject,    // discard the upload entirely
};

/// Server-side upload validation. Non-finite uploads are always
/// rejected when screening is enabled; the norm bound is optional.
struct UploadScreenConfig {
  bool enabled = true;
  /// Maximum L2 norm of (upload - reference); <= 0 disables the bound.
  double max_delta_norm = 0.0;
  ScreenPolicy norm_policy = ScreenPolicy::kClip;
};

/// Validates (and under kClip possibly repairs) one upload against the
/// current global model `reference`. Returns OK when the upload may
/// enter aggregation; a non-OK Status means it must be discarded. Never
/// crashes on garbage input. When `clipped` is non-null it is set to
/// whether the delta was norm-clipped.
[[nodiscard]] Status ScreenUpload(std::vector<nn::Scalar>* upload,
                    const std::vector<nn::Scalar>& reference,
                    const UploadScreenConfig& config,
                    bool* clipped = nullptr);

/// Aggregation rule applied to the screened uploads. The first three
/// tolerate damaged-but-independent uploads; the Byzantine entries
/// (Krum / Multi-Krum / norm-bound) additionally resist colluding
/// adversaries that craft norm-plausible poison (fl/adversary).
enum class AggregatorPolicy {
  kMean = 0,        // FedAvg: element-wise mean
  kMedian,          // coordinate-wise median
  kTrimmedMean,     // drop the k smallest/largest per coordinate, mean rest
  kKrum,            // the one upload closest to its n-f-2 nearest neighbors
  kMultiKrum,       // mean of the m-f lowest-Krum-score uploads
  kNormBound,       // clip every delta to the rolling median accepted norm
};

const char* AggregatorPolicyName(AggregatorPolicy policy);

/// Strict parse of the CLI spellings (mean|median|trimmed|krum|
/// multikrum|normbound) plus the AggregatorPolicyName round-trip forms.
/// Returns false on unknown text without touching `out`.
bool ParseAggregatorPolicy(const std::string& text, AggregatorPolicy* out);

struct AggregatorConfig {
  AggregatorPolicy policy = AggregatorPolicy::kMean;
  /// Fraction trimmed from EACH tail per coordinate (kTrimmedMean only);
  /// e.g. 0.1 with 10 uploads drops the min and max value per weight.
  double trim_fraction = 0.1;
  /// Assumed fraction of Byzantine uploads per round (kKrum/kMultiKrum):
  /// f = floor(byzantine_fraction * m). Krum needs m - f - 2 >= 1
  /// neighbors; smaller cohorts fall back to the coordinate median.
  double byzantine_fraction = 0.25;
  /// Detection (not selection) threshold: a non-selected upload whose
  /// Krum score exceeds suspicion_mult x the cohort median score AND
  /// suspicion_mult x the median squared update magnitude (distance to
  /// the reference, when one is given) — or, under kNormBound, whose
  /// delta norm exceeds suspicion_mult x the bound — is flagged
  /// suspected. Relative on purpose: on a clean round every score sits
  /// near the median and nobody is flagged; the magnitude anchor keeps
  /// a nearly degenerate honest cluster (median score ~ 0) from making
  /// its own stragglers look suspicious.
  double suspicion_mult = 4.0;
  /// kKrum/kMultiKrum aggregation mode: detection runs unchanged, but
  /// the returned aggregate is the plain mean over the uploads NOT
  /// flagged suspected this round (falling back to the Krum-selected
  /// aggregate when every upload is flagged). Krum selection is a
  /// strong detector but a lossy aggregator — it pays a selection tax
  /// on every clean round by discarding honest outer uploads. This mode
  /// makes the defense free when nothing is wrong and surgical when
  /// something is: exactly the flagged uploads sit out.
  bool exclude_suspected = false;
};

/// Aggregates screened uploads into one parameter vector. Returns
/// FailedPrecondition for an empty upload set and InvalidArgument for
/// mismatched vector lengths — callers keep the previous global model
/// instead of crashing.
///
/// The extended overload powers the Byzantine policies: `reference` is
/// the current global model (required by kNormBound; may be null for
/// the others), `norm_bound` the rolling median accepted delta norm
/// (<= 0 means unarmed: kNormBound degrades to the plain mean), and
/// `suspected`, when non-null, is resized to uploads.size() with a 1
/// per upload the policy flagged as probable poison. Under kKrum /
/// kMultiKrum the flag fires on the score threshold above, and on two
/// certificates the distance scores are blind to:
///   - collusion: two bitwise-identical uploads from distinct clients
///     (min-max colluders' tell — independent trainings never reproduce
///     an identical multi-parameter model, and the shared zero distance
///     deflates exactly the Krum score that would otherwise expose
///     them). Needs >= 2 parameters: a one-dimensional upload cannot
///     distinguish collusion from coincidence.
///   - anti-alignment: an upload delta at strongly negative cosine
///     against the robust aggregate (sign-flip / norm-matched attacks —
///     flipping preserves every norm and pairwise distance statistic,
///     but honest clients never descend AGAINST the consensus). Needs
///     `reference` and enough parameters that direction is evidence.
[[nodiscard]] Result<std::vector<nn::Scalar>> AggregateFlat(
    const std::vector<std::vector<nn::Scalar>>& uploads,
    const AggregatorConfig& config);
[[nodiscard]] Result<std::vector<nn::Scalar>> AggregateFlat(
    const std::vector<std::vector<nn::Scalar>>& uploads,
    const AggregatorConfig& config,
    const std::vector<nn::Scalar>* reference, double norm_bound,
    std::vector<uint8_t>* suspected);

}  // namespace lighttr::fl

#endif  // LIGHTTR_FL_AGGREGATION_H_
