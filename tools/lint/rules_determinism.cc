// The determinism rule family: static enforcement of the bitwise-
// reproducibility contract (DESIGN.md §12) over src/fl, src/nn and
// src/common. Everything built since the crash/resume and parallel
// substrates — rollback, quarantine, lossy transport — asserts that a
// run is bit-identical across thread counts, crash points and network
// weather; these rules reject the code shapes that silently break it:
//
//   no-unordered-iteration  hash-order-dependent loops (range-for or
//                           .begin() iteration over unordered_map/set;
//                           lookups stay legal)
//   no-wall-clock           wall/monotonic clock reads outside
//                           common/stopwatch.h
//   no-pointer-keys         containers ordered or hashed on pointer
//                           values (allocator-dependent order), and
//                           std::hash over pointer types
//   parallel-capture-audit  ParallelFor/submit lambdas capturing by
//                           reference without a justification comment
//                           `// lint: shared-state(<guard>)` naming a
//                           token that actually appears in the body
#include <regex>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "lint/engine.h"
#include "lint/token.h"

namespace lighttr::lint {
namespace {

bool IsUnorderedContainer(const std::string& id) {
  return id == "unordered_map" || id == "unordered_set" ||
         id == "unordered_multimap" || id == "unordered_multiset";
}

bool IsOrderedKeyedContainer(const std::string& id) {
  return id == "map" || id == "set" || id == "multimap" || id == "multiset";
}

// ---------------------------------------------------------------------------
// Rule: no-unordered-iteration
//
// Hash-table iteration order is libstdc++-version-, seed- and
// insertion-history-dependent: any loop over it that feeds telemetry,
// aggregation order or serialization diverges across builds and runs.
// The pass tracks names declared (or aliased) with an unordered type in
// the file — members, locals, by-reference parameters — then flags
// range-for statements ranging over them and .begin()/.cbegin() style
// iteration starts. find/count/at/contains and erase-by-key never
// touch iteration order and stay legal. The fix is a std::map/std::set,
// a sorted snapshot, or a canonical index loop.
// ---------------------------------------------------------------------------

void CheckNoUnorderedIteration(Context* ctx, size_t fi) {
  const TokenizedFile& file = ctx->files[fi];
  if (!InDeterminismScope(file.norm_path)) return;
  const std::vector<Token>& t = file.tokens;

  // Pass 1: names with an unordered type. `aliases` collects
  // `using X = std::unordered_map<...>`; `vars` collects declared
  // variable/member/parameter names.
  std::set<std::string> aliases;
  std::set<std::string> vars;
  for (size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != TokenKind::kIdent) continue;
    if (t[i].text == "using" && i + 2 < t.size() &&
        t[i + 1].kind == TokenKind::kIdent && IsPunct(t, i + 2, "=")) {
      for (size_t j = i + 3; j < t.size() && !IsPunct(t, j, ";"); ++j) {
        if (t[j].kind == TokenKind::kIdent &&
            IsUnorderedContainer(t[j].text)) {
          aliases.insert(t[i + 1].text);
          break;
        }
      }
      continue;
    }
    size_t after = kNpos;  // token index just past the full type
    if (IsUnorderedContainer(t[i].text) && IsPunct(t, i + 1, "<")) {
      const size_t close = MatchingDelim(t, i + 1, "<", ">");
      if (close != kNpos) after = close + 1;
    } else if (aliases.count(t[i].text) > 0 && !IsMemberAccess(t, i)) {
      after = i + 1;
    }
    if (after == kNpos) continue;
    if (IsPunct(t, after, "::")) continue;  // ::iterator etc., not a decl
    while (IsPunct(t, after, "&") || IsPunct(t, after, "*")) ++after;
    if (after < t.size() && t[after].kind == TokenKind::kIdent) {
      vars.insert(t[after].text);
    }
  }

  for (size_t i = 0; i < t.size(); ++i) {
    // Range-for over an unordered name: for ( decl : range ).
    if (IsIdent(t, i, "for") && IsPunct(t, i + 1, "(")) {
      const size_t close = MatchingDelim(t, i + 1, "(", ")");
      if (close == kNpos) continue;
      size_t colon = kNpos;
      int depth = 0;
      for (size_t j = i + 1; j < close; ++j) {
        if (t[j].kind != TokenKind::kPunct) continue;
        if (t[j].text == "(" || t[j].text == "[") ++depth;
        if (t[j].text == ")" || t[j].text == "]") --depth;
        if (depth == 1 && t[j].text == ";") break;  // classic for loop
        if (depth == 1 && t[j].text == ":") {
          colon = j;
          break;
        }
      }
      if (colon == kNpos) continue;
      for (size_t j = colon + 1; j < close; ++j) {
        if (t[j].kind != TokenKind::kIdent) continue;
        if (vars.count(t[j].text) == 0 && !IsUnorderedContainer(t[j].text)) {
          continue;
        }
        ctx->Report(fi, t[i].line, "no-unordered-iteration",
                    "range-for over unordered container '" + t[j].text +
                        "': hash iteration order is not deterministic; use "
                        "an ordered container, a sorted snapshot, or a "
                        "canonical index loop");
        break;
      }
      continue;
    }
    // Iteration start on an unordered name: v.begin() / v->cbegin() /
    // std::begin(v).
    if (t[i].kind == TokenKind::kIdent && vars.count(t[i].text) > 0 &&
        (IsPunct(t, i + 1, ".") || IsPunct(t, i + 1, "->")) &&
        i + 2 < t.size() && t[i + 2].kind == TokenKind::kIdent) {
      const std::string& member = t[i + 2].text;
      if ((member == "begin" || member == "cbegin" || member == "rbegin" ||
           member == "crbegin") &&
          IsPunct(t, i + 3, "(")) {
        ctx->Report(fi, t[i].line, "no-unordered-iteration",
                    "iterator walk over unordered container '" + t[i].text +
                        "' (." + member +
                        "()): hash iteration order is not deterministic; "
                        "lookups (find/count/at) stay legal");
      }
    }
    if ((IsIdent(t, i, "begin") || IsIdent(t, i, "cbegin")) &&
        IsStdQualified(t, i) && IsPunct(t, i + 1, "(") && i + 2 < t.size() &&
        t[i + 2].kind == TokenKind::kIdent && vars.count(t[i + 2].text) > 0) {
      ctx->Report(fi, t[i].line, "no-unordered-iteration",
                  "std::" + t[i].text + " over unordered container '" +
                      t[i + 2].text +
                      "': hash iteration order is not deterministic");
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: no-wall-clock
//
// A wall- or monotonic-clock read in the training/serving core makes
// behaviour depend on machine load: retries, batching and telemetry
// must all be driven by simulated time (round counters, the
// deterministic backoff schedule). common/stopwatch.h is the one
// sanctioned wrapper — benches and the CLI measure real time through
// it, outside the determinism scope.
// ---------------------------------------------------------------------------

void CheckNoWallClock(Context* ctx, size_t fi) {
  const TokenizedFile& file = ctx->files[fi];
  if (!InDeterminismScope(file.norm_path)) return;
  if (PathEndsWith(file.norm_path, "common/stopwatch.h")) return;
  const std::vector<Token>& t = file.tokens;
  for (size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != TokenKind::kIdent) continue;
    const std::string& id = t[i].text;
    if (id == "system_clock" || id == "steady_clock" ||
        id == "high_resolution_clock") {
      ctx->Report(fi, t[i].line, "no-wall-clock",
                  "std::chrono::" + id +
                      " in the determinism scope; real time may only be "
                      "read through common/stopwatch (bench/CLI layers), "
                      "core logic must use simulated time");
      continue;
    }
    if ((id == "time" || id == "clock" || id == "gettimeofday" ||
         id == "localtime" || id == "timespec_get") &&
        IsFreeOrStdCall(t, i)) {
      ctx->Report(fi, t[i].line, "no-wall-clock",
                  id +
                      "() reads the wall clock; core logic must use "
                      "simulated time (round counters, backoff schedule) or "
                      "common/stopwatch at the bench/CLI boundary");
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: no-pointer-keys
//
// A container keyed on pointer values orders (or buckets) its entries
// by allocator addresses, which differ run to run under ASLR and heap
// history — iteration, min/max and tie-breaks over it are
// nondeterministic even when lookups are correct. std::hash over a
// pointer type is the same bug fed into some other structure. Key on a
// stable id (client index, node sequence number) instead.
// ---------------------------------------------------------------------------

// True when the first template argument starting at `open` (a `<`
// token) contains a top-level-ish `*` — a pointer key.
bool FirstTemplateArgHasPointer(const std::vector<Token>& t, size_t open,
                                size_t close) {
  int depth = 0;
  for (size_t j = open; j < close; ++j) {
    if (t[j].kind != TokenKind::kPunct) continue;
    if (t[j].text == "<" || t[j].text == "(") ++depth;
    if (t[j].text == ">" || t[j].text == ")") --depth;
    if (depth == 1 && t[j].text == ",") return false;  // first arg ended
    if (t[j].text == "*") return true;
  }
  return false;
}

void CheckNoPointerKeys(Context* ctx, size_t fi) {
  const TokenizedFile& file = ctx->files[fi];
  if (!InDeterminismScope(file.norm_path)) return;
  const std::vector<Token>& t = file.tokens;
  for (size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != TokenKind::kIdent || !IsPunct(t, i + 1, "<")) continue;
    const std::string& id = t[i].text;
    const bool keyed_container =
        IsUnorderedContainer(id) || IsOrderedKeyedContainer(id);
    const bool hasher = id == "hash" && IsStdQualified(t, i);
    if (!keyed_container && !hasher) continue;
    const size_t close = MatchingDelim(t, i + 1, "<", ">");
    if (close == kNpos) continue;
    if (!FirstTemplateArgHasPointer(t, i + 1, close)) continue;
    if (hasher) {
      ctx->Report(fi, t[i].line, "no-pointer-keys",
                  "std::hash over a pointer type hashes addresses, which "
                  "vary run to run; hash a stable id instead");
    } else {
      ctx->Report(fi, t[i].line, "no-pointer-keys",
                  "container '" + id +
                      "' keyed on pointer values: address order is "
                      "allocator- and ASLR-dependent; key on a stable id "
                      "(index, sequence number) instead");
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: parallel-capture-audit
//
// A ParallelFor (or pool submit) body that captures by reference is
// sharing state across workers. That is sometimes exactly right —
// pre-sized output slots, a mutex-guarded cache, an atomic counter —
// but it must be *declared*: the call site carries a comment
//
//   // lint: shared-state(<guard>[, <guard>...])
//
// on the call or lambda-introducer line, and every named guard must
// actually appear as a token in the lambda body. A missing annotation,
// or one naming a token the body never touches, is an error. By-value
// captures need no annotation.
// ---------------------------------------------------------------------------

// Extracts shared-state guard names from the comment channel of `line`.
// Returns true when an annotation exists (names may still be empty).
bool SharedStateAnnotation(const TokenizedFile& file, int line,
                           std::vector<std::string>* names) {
  static const std::regex kAnnotation(R"(lint:\s*shared-state\(([^)]*)\))");
  if (line < 1 || static_cast<size_t>(line) > file.comments.size()) {
    return false;
  }
  std::smatch m;
  const std::string& comment = file.comments[line - 1];
  if (!std::regex_search(comment, m, kAnnotation)) return false;
  std::stringstream list(m[1].str());
  std::string item;
  while (std::getline(list, item, ',')) {
    std::string trimmed;
    for (char c : item) {
      if (!std::isspace(static_cast<unsigned char>(c))) trimmed += c;
    }
    if (!trimmed.empty()) names->push_back(std::move(trimmed));
  }
  return true;
}

void CheckParallelCaptureAudit(Context* ctx, size_t fi) {
  const TokenizedFile& file = ctx->files[fi];
  if (!InDeterminismScope(file.norm_path)) return;
  const std::vector<Token>& t = file.tokens;
  for (size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != TokenKind::kIdent ||
        (t[i].text != "ParallelFor" && t[i].text != "Submit" &&
         t[i].text != "Enqueue")) {
      continue;
    }
    if (!IsPunct(t, i + 1, "(")) continue;
    const size_t call_close = MatchingDelim(t, i + 1, "(", ")");
    if (call_close == kNpos) continue;

    // Every lambda introducer among the arguments: a `[` that follows
    // `(` or `,` (a subscript follows a value token instead).
    for (size_t j = i + 2; j < call_close; ++j) {
      if (!IsPunct(t, j, "[")) continue;
      if (!(IsPunct(t, j - 1, "(") || IsPunct(t, j - 1, ","))) continue;
      const size_t cap_close = MatchingDelim(t, j, "[", "]");
      if (cap_close == kNpos) break;
      bool by_ref = false;
      for (size_t k = j + 1; k < cap_close; ++k) {
        if (IsPunct(t, k, "&")) by_ref = true;
      }
      if (!by_ref) continue;

      std::vector<std::string> guards;
      const bool annotated =
          SharedStateAnnotation(file, t[j].line, &guards) ||
          SharedStateAnnotation(file, t[i].line, &guards);
      if (!annotated) {
        ctx->Report(
            fi, t[j].line, "parallel-capture-audit",
            t[i].text +
                " lambda captures by reference without a justification; "
                "declare the sharing discipline with "
                "// lint: shared-state(<mutex|atomic|slot>) naming the "
                "guard, or capture by value");
        continue;
      }
      // Lambda body: first `{` after the capture list, to its match.
      size_t body_open = cap_close + 1;
      while (body_open < t.size() && !IsPunct(t, body_open, "{")) ++body_open;
      const size_t body_close =
          body_open < t.size() ? MatchingDelim(t, body_open, "{", "}") : kNpos;
      for (const std::string& guard : guards) {
        bool present = false;
        for (size_t k = body_open;
             body_close != kNpos && k < body_close && !present; ++k) {
          present = t[k].kind == TokenKind::kIdent && t[k].text == guard;
        }
        if (!present) {
          ctx->Report(fi, t[j].line, "parallel-capture-audit",
                      "shared-state(" + guard +
                          ") names a guard that never appears in the lambda "
                          "body; the justification must reference the real "
                          "mutex/atomic/slot");
        }
      }
    }
  }
}

}  // namespace

void RunDeterminismRules(Context* ctx) {
  for (size_t fi = 0; fi < ctx->files.size(); ++fi) {
    CheckNoUnorderedIteration(ctx, fi);
    CheckNoWallClock(ctx, fi);
    CheckNoPointerKeys(ctx, fi);
    CheckParallelCaptureAudit(ctx, fi);
  }
}

}  // namespace lighttr::lint
