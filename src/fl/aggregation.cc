#include "fl/aggregation.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/finite.h"
#include "fl/privacy.h"

namespace lighttr::fl {

const char* AggregatorPolicyName(AggregatorPolicy policy) {
  switch (policy) {
    case AggregatorPolicy::kMean:
      return "mean";
    case AggregatorPolicy::kMedian:
      return "median";
    case AggregatorPolicy::kTrimmedMean:
      return "trimmed_mean";
    case AggregatorPolicy::kKrum:
      return "krum";
    case AggregatorPolicy::kMultiKrum:
      return "multikrum";
    case AggregatorPolicy::kNormBound:
      return "normbound";
  }
  return "unknown";
}

bool ParseAggregatorPolicy(const std::string& text, AggregatorPolicy* out) {
  LIGHTTR_CHECK(out != nullptr);
  if (text == "mean") {
    *out = AggregatorPolicy::kMean;
  } else if (text == "median") {
    *out = AggregatorPolicy::kMedian;
  } else if (text == "trimmed" || text == "trimmed_mean") {
    *out = AggregatorPolicy::kTrimmedMean;
  } else if (text == "krum") {
    *out = AggregatorPolicy::kKrum;
  } else if (text == "multikrum" || text == "multi_krum") {
    *out = AggregatorPolicy::kMultiKrum;
  } else if (text == "normbound" || text == "norm_bound") {
    *out = AggregatorPolicy::kNormBound;
  } else {
    return false;
  }
  return true;
}

Status ScreenUpload(std::vector<nn::Scalar>* upload,
                    const std::vector<nn::Scalar>& reference,
                    const UploadScreenConfig& config, bool* clipped) {
  LIGHTTR_CHECK(upload != nullptr);
  if (clipped != nullptr) *clipped = false;
  if (!config.enabled) return Status::Ok();
  if (upload->size() != reference.size()) {
    return Status::InvalidArgument("upload has wrong parameter count");
  }
  if (!AllFinite(*upload)) {
    return Status::InvalidArgument("upload contains non-finite scalars");
  }
  if (config.max_delta_norm > 0.0) {
    const double norm = DeltaNorm(*upload, reference);
    if (norm > config.max_delta_norm) {
      if (config.norm_policy == ScreenPolicy::kReject) {
        return Status::OutOfRange("upload delta norm " +
                                  std::to_string(norm) + " exceeds bound " +
                                  std::to_string(config.max_delta_norm));
      }
      // kClip: rescale the delta onto the bound, keeping its direction.
      if (clipped != nullptr) *clipped = true;
      const double scale = config.max_delta_norm / norm;
      for (size_t i = 0; i < upload->size(); ++i) {
        (*upload)[i] = reference[i] +
                       static_cast<nn::Scalar>(
                           ((*upload)[i] - reference[i]) * scale);
      }
    }
  }
  return Status::Ok();
}

namespace {

/// Coordinate-wise median (kMedian, and the small-cohort fallback for
/// Krum). Even cohorts average the two middle values.
std::vector<nn::Scalar> CoordinateMedian(
    const std::vector<std::vector<nn::Scalar>>& uploads, size_t n,
    size_t m) {
  std::vector<nn::Scalar> out(n, nn::Scalar{0});
  std::vector<nn::Scalar> column(m);
  for (size_t i = 0; i < n; ++i) {
    for (size_t c = 0; c < m; ++c) column[c] = uploads[c][i];
    auto mid = column.begin() + static_cast<ptrdiff_t>(m / 2);
    std::nth_element(column.begin(), mid, column.end());
    if (m % 2 == 1) {
      out[i] = *mid;
    } else {
      const nn::Scalar upper = *mid;
      const nn::Scalar lower = *std::max_element(column.begin(), mid);
      out[i] = (lower + upper) / nn::Scalar{2};
    }
  }
  return out;
}

/// Anti-alignment certificate threshold: an upload delta at cosine
/// below this against the robust aggregate is flagged suspected. Honest
/// clients descending a shared loss surface sit at clearly positive
/// cosine (empirically ~ +0.5 on the LightTR workloads); a sign-flipped
/// delta mirrors to the same magnitude negative. -0.25 leaves a wide
/// no-fire band around orthogonal for heterogeneous-but-honest data.
constexpr double kAntiAlignCos = -0.25;
/// The direction test needs enough dimensions that strong anti-
/// alignment is real evidence: a near-scalar model's delta direction
/// carries about one bit, and honest sign disagreement is routine.
constexpr size_t kMinDirectionParams = 8;

double SquaredDistance(const std::vector<nn::Scalar>& a,
                       const std::vector<nn::Scalar>& b) {
  double sum = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    sum += d * d;
  }
  return sum;
}

/// Krum scores: score_i = sum of squared distances from upload i to its
/// `neighbors` nearest other uploads. Low score = deep inside the
/// honest cluster; colluders pull each other close but remain far from
/// everyone else once neighbors excludes f suspected peers. When
/// `min_dist` is non-null it receives each upload's distance to its
/// single nearest peer (the collusion-certificate input: byte-identical
/// colluders sit at exactly 0).
std::vector<double> KrumScores(
    const std::vector<std::vector<nn::Scalar>>& uploads, size_t m,
    size_t neighbors, std::vector<double>* min_dist) {
  std::vector<std::vector<double>> dist(m, std::vector<double>(m, 0.0));
  for (size_t i = 0; i < m; ++i) {
    for (size_t j = i + 1; j < m; ++j) {
      const double d = SquaredDistance(uploads[i], uploads[j]);
      dist[i][j] = d;
      dist[j][i] = d;
    }
  }
  if (min_dist != nullptr) min_dist->assign(m, 0.0);
  std::vector<double> scores(m, 0.0);
  std::vector<double> others;
  others.reserve(m - 1);
  for (size_t i = 0; i < m; ++i) {
    others.clear();
    for (size_t j = 0; j < m; ++j) {
      if (j != i) others.push_back(dist[i][j]);
    }
    std::sort(others.begin(), others.end());
    if (min_dist != nullptr && !others.empty()) {
      (*min_dist)[i] = others.front();
    }
    double sum = 0.0;
    for (size_t j = 0; j < neighbors && j < others.size(); ++j) {
      sum += others[j];
    }
    scores[i] = sum;
  }
  return scores;
}

}  // namespace

Result<std::vector<nn::Scalar>> AggregateFlat(
    const std::vector<std::vector<nn::Scalar>>& uploads,
    const AggregatorConfig& config) {
  return AggregateFlat(uploads, config, /*reference=*/nullptr,
                       /*norm_bound=*/0.0, /*suspected=*/nullptr);
}

Result<std::vector<nn::Scalar>> AggregateFlat(
    const std::vector<std::vector<nn::Scalar>>& uploads,
    const AggregatorConfig& config,
    const std::vector<nn::Scalar>* reference, double norm_bound,
    std::vector<uint8_t>* suspected) {
  if (suspected != nullptr) suspected->assign(uploads.size(), 0);
  if (uploads.empty()) {
    return Status::FailedPrecondition("no uploads to aggregate");
  }
  const size_t n = uploads[0].size();
  for (const auto& flat : uploads) {
    if (flat.size() != n) {
      return Status::InvalidArgument("upload length mismatch in aggregation");
    }
  }
  const size_t m = uploads.size();

  switch (config.policy) {
    case AggregatorPolicy::kMean: {
      std::vector<nn::Scalar> out(n, nn::Scalar{0});
      for (const auto& flat : uploads) {
        for (size_t i = 0; i < n; ++i) out[i] += flat[i];
      }
      const auto inv = nn::Scalar{1} / static_cast<nn::Scalar>(m);
      for (nn::Scalar& x : out) x *= inv;
      return out;
    }
    case AggregatorPolicy::kMedian: {
      return CoordinateMedian(uploads, n, m);
    }
    case AggregatorPolicy::kTrimmedMean: {
      if (config.trim_fraction < 0.0 || config.trim_fraction >= 0.5) {
        return Status::InvalidArgument("trim_fraction must be in [0, 0.5)");
      }
      const size_t k = static_cast<size_t>(
          std::floor(config.trim_fraction * static_cast<double>(m)));
      if (2 * k >= m) {
        // Unreachable while the fraction bound above holds (k <=
        // floor(m * 0.5 - epsilon) < m/2), but the old silent clamp here
        // hid exactly this class of bound drift: fail loudly instead of
        // averaging an empty (or wrong-width) slice.
        return Status::InvalidArgument(
            "trim_fraction " + std::to_string(config.trim_fraction) +
            " trims " + std::to_string(k) + " per tail, leaving no values"
            " from " + std::to_string(m) + " uploads");
      }
      std::vector<nn::Scalar> out(n, nn::Scalar{0});
      std::vector<nn::Scalar> column(m);
      const auto inv = nn::Scalar{1} / static_cast<nn::Scalar>(m - 2 * k);
      for (size_t i = 0; i < n; ++i) {
        for (size_t c = 0; c < m; ++c) column[c] = uploads[c][i];
        std::sort(column.begin(), column.end());
        nn::Scalar sum{0};
        for (size_t c = k; c < m - k; ++c) sum += column[c];
        out[i] = sum * inv;
      }
      return out;
    }
    case AggregatorPolicy::kKrum:
    case AggregatorPolicy::kMultiKrum: {
      if (config.byzantine_fraction < 0.0 || config.byzantine_fraction >= 1.0) {
        return Status::InvalidArgument("byzantine_fraction must be in [0, 1)");
      }
      if (!(config.suspicion_mult > 0.0)) {
        return Status::InvalidArgument("suspicion_mult must be positive");
      }
      const size_t f = static_cast<size_t>(
          std::floor(config.byzantine_fraction * static_cast<double>(m)));
      // Krum needs m - f - 2 >= 1 scoreable neighbors; tiny cohorts
      // (single-client rounds, heavy dropout) fall back to the
      // coordinate median — defined for any m >= 1 — instead of
      // underflowing the neighbor count.
      if (m < f + 3) {
        return CoordinateMedian(uploads, n, m);
      }
      const size_t neighbors = m - f - 2;
      // Detection must run for the caller's suspected buffer AND for
      // exclude_suspected mode (which filters on the flags even when
      // the caller does not ask to see them).
      const bool want_flags = suspected != nullptr || config.exclude_suspected;
      std::vector<double> min_dist;
      const std::vector<double> scores =
          KrumScores(uploads, m, neighbors, want_flags ? &min_dist : nullptr);
      // Rank by (score, index): the index tiebreak keeps selection
      // deterministic when uploads coincide.
      std::vector<size_t> order(m);
      for (size_t i = 0; i < m; ++i) order[i] = i;
      std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
        if (scores[a] != scores[b]) return scores[a] < scores[b];
        return a < b;
      });
      const size_t selected =
          config.policy == AggregatorPolicy::kKrum ? 1 : m - f;
      std::vector<nn::Scalar> out(n, nn::Scalar{0});
      for (size_t rank = 0; rank < selected; ++rank) {
        const auto& flat = uploads[order[rank]];
        for (size_t i = 0; i < n; ++i) out[i] += flat[i];
      }
      const auto inv = nn::Scalar{1} / static_cast<nn::Scalar>(selected);
      for (nn::Scalar& x : out) x *= inv;
      std::vector<uint8_t> flags(m, 0);
      if (want_flags) {
        std::vector<double> sorted_scores(scores.begin(), scores.end());
        std::sort(sorted_scores.begin(), sorted_scores.end());
        const double median_score = m % 2 == 1
                                        ? sorted_scores[m / 2]
                                        : 0.5 * (sorted_scores[m / 2 - 1] +
                                                 sorted_scores[m / 2]);
        // A purely relative test misfires when the honest cluster is
        // nearly degenerate: median_score ~ 0 lets any nonzero spread
        // look suspicious. Anchor on the median squared update
        // magnitude too — a poisoner cannot stay under that bar and
        // still move the model, but an honest straggler in a tight
        // cluster stays far below it.
        double anchor = 0.0;
        if (reference != nullptr && reference->size() == n) {
          std::vector<double> mags(m);
          for (size_t c = 0; c < m; ++c) {
            mags[c] = SquaredDistance(uploads[c], *reference);
          }
          std::sort(mags.begin(), mags.end());
          anchor = m % 2 == 1
                       ? mags[m / 2]
                       : 0.5 * (mags[m / 2 - 1] + mags[m / 2]);
        }
        for (size_t rank = selected; rank < m; ++rank) {
          const size_t i = order[rank];
          if (scores[i] > config.suspicion_mult * median_score &&
              scores[i] > config.suspicion_mult * anchor &&
              scores[i] > 0.0) {
            flags[i] = 1;
          }
        }
        // Collusion certificate (see the header): bitwise-identical
        // uploads from distinct clients. Checked at every rank — the
        // shared zero distance deflates the colluders' scores, so they
        // may well have ranked into the selected set. Skipped when
        // every upload coincides (max score 0: a fully degenerate round
        // has no pair to single out) and for one-parameter models.
        if (n >= 2 && sorted_scores.back() > 0.0) {
          for (size_t i = 0; i < m; ++i) {
            if (min_dist[i] == 0.0) flags[i] = 1;
          }
        }
        // Anti-alignment certificate (see the header): an upload whose
        // delta points sharply AGAINST the robust aggregate's direction
        // (cos below kAntiAlignCos). Distance-based scores cannot see
        // this — flipping a delta preserves every norm and barely moves
        // pairwise distances when honest updates correlate weakly — but
        // honest clients descend a shared loss surface and never
        // anti-align with the consensus this strongly. Needs enough
        // dimensions that anti-alignment is evidence rather than the
        // fifty-fifty sign disagreement a near-scalar model produces.
        if (n >= kMinDirectionParams && reference != nullptr &&
            reference->size() == n) {
          double agg_sq = 0.0;
          for (size_t i = 0; i < n; ++i) {
            const double a = out[i] - (*reference)[i];
            agg_sq += a * a;
          }
          if (agg_sq > 0.0) {
            for (size_t c = 0; c < m; ++c) {
              double dot = 0.0;
              double up_sq = 0.0;
              for (size_t i = 0; i < n; ++i) {
                const double u = uploads[c][i] - (*reference)[i];
                dot += u * (out[i] - (*reference)[i]);
                up_sq += u * u;
              }
              // cos < kAntiAlignCos, squared to avoid the sqrt:
              // dot < 0 and dot^2 > cos^2 * |u|^2 * |agg|^2.
              if (up_sq > 0.0 && dot < 0.0 &&
                  dot * dot > kAntiAlignCos * kAntiAlignCos * up_sq * agg_sq) {
                flags[c] = 1;
              }
            }
          }
        }
      }
      if (suspected != nullptr) *suspected = flags;
      if (config.exclude_suspected) {
        // Aggregate as the plain mean over the un-flagged uploads; the
        // Krum-selected aggregate (already in `out`) is the fallback
        // when detection flagged everyone.
        size_t kept = 0;
        std::vector<nn::Scalar> mean(n, nn::Scalar{0});
        for (size_t c = 0; c < m; ++c) {
          if (flags[c] != 0) continue;
          ++kept;
          for (size_t i = 0; i < n; ++i) mean[i] += uploads[c][i];
        }
        if (kept > 0) {
          const auto kept_inv =
              nn::Scalar{1} / static_cast<nn::Scalar>(kept);
          for (nn::Scalar& x : mean) x *= kept_inv;
          return mean;
        }
      }
      return out;
    }
    case AggregatorPolicy::kNormBound: {
      if (reference == nullptr) {
        return Status::InvalidArgument(
            "norm-bound aggregation needs the global model as reference");
      }
      if (reference->size() != n) {
        return Status::InvalidArgument(
            "norm-bound reference length mismatch");
      }
      if (!(config.suspicion_mult > 0.0)) {
        return Status::InvalidArgument("suspicion_mult must be positive");
      }
      // bound <= 0 means the rolling norm history has not armed yet:
      // degrade to the plain mean rather than clipping against garbage.
      std::vector<nn::Scalar> out(n, nn::Scalar{0});
      for (size_t c = 0; c < m; ++c) {
        const double norm = DeltaNorm(uploads[c], *reference);
        double scale = 1.0;
        if (norm_bound > 0.0 && norm > norm_bound) {
          scale = norm_bound / norm;
          if (suspected != nullptr &&
              norm > config.suspicion_mult * norm_bound) {
            (*suspected)[c] = 1;
          }
        }
        if (scale == 1.0) {
          for (size_t i = 0; i < n; ++i) out[i] += uploads[c][i];
        } else {
          for (size_t i = 0; i < n; ++i) {
            out[i] += (*reference)[i] +
                      static_cast<nn::Scalar>(
                          (uploads[c][i] - (*reference)[i]) * scale);
          }
        }
      }
      const auto inv = nn::Scalar{1} / static_cast<nn::Scalar>(m);
      for (nn::Scalar& x : out) x *= inv;
      return out;
    }
  }
  return Status::Internal("unknown aggregator policy");
}

}  // namespace lighttr::fl
