// Tests for dataset statistics (Table III analog), model checkpointing,
// and per-client evaluation.
#include <gtest/gtest.h>

#include <cstdio>

#include "eval/harness.h"
#include "eval/metrics.h"
#include "nn/checkpoint.h"
#include "traj/stats.h"

namespace lighttr {
namespace {

class StatsToolsTest : public ::testing::Test {
 protected:
  StatsToolsTest() : env_(6, 6, 91) {
    traj::WorkloadProfile profile = traj::TdriveLikeProfile();
    profile.trajectories_per_client = 8;
    traj::FederatedWorkloadOptions workload;
    workload.num_clients = 3;
    workload.keep_ratio = 0.25;
    clients_ = env_.MakeWorkload(profile, workload, 92);
  }

  eval::ExperimentEnv env_;
  std::vector<traj::ClientDataset> clients_;
};

TEST_F(StatsToolsTest, DatasetStatsAreConsistent) {
  const traj::DatasetStats stats =
      traj::ComputeWorkloadStats(env_.network(), clients_);
  EXPECT_EQ(stats.trajectories, 3 * 8);
  EXPECT_EQ(stats.drivers, 3);
  EXPECT_GT(stats.points, stats.trajectories * 10);
  EXPECT_NEAR(stats.mean_points_per_trajectory,
              static_cast<double>(stats.points) / stats.trajectories, 1e-9);
  EXPECT_GT(stats.total_length_km, 1.0);
  // Generator speeds are bounded to the profile's cruise range.
  const traj::WorkloadProfile profile = traj::TdriveLikeProfile();
  EXPECT_GE(stats.mean_speed_mps, profile.generator.speed_mps_min * 0.8);
  EXPECT_LE(stats.mean_speed_mps, profile.generator.speed_mps_max * 1.1);
  EXPECT_DOUBLE_EQ(stats.epsilon_s, profile.generator.epsilon_s);
  // Keep ratio 0.25 plus forced endpoints.
  EXPECT_GT(stats.observed_fraction, 0.2);
  EXPECT_LT(stats.observed_fraction, 0.45);
}

TEST_F(StatsToolsTest, EmptyDatasetStats) {
  const traj::DatasetStats stats =
      traj::ComputeDatasetStats(env_.network(), {});
  EXPECT_EQ(stats.trajectories, 0);
  EXPECT_EQ(stats.points, 0);
  EXPECT_DOUBLE_EQ(stats.total_length_km, 0.0);
}

TEST_F(StatsToolsTest, CheckpointRoundTripThroughDisk) {
  Rng r1(1);
  Rng r2(2);
  auto source = baselines::MakeFactory(baselines::ModelKind::kLightTr,
                                       &env_.encoder())(&r1);
  auto dest = baselines::MakeFactory(baselines::ModelKind::kLightTr,
                                     &env_.encoder())(&r2);
  const std::string path = "/tmp/lighttr_checkpoint_test.bin";
  ASSERT_TRUE(nn::SaveCheckpoint(path, source->params()).ok());
  ASSERT_TRUE(nn::LoadCheckpoint(path, &dest->params()).ok());
  const auto a = source->params().Flatten();
  const auto b = dest->params().Flatten();
  for (size_t i = 0; i < a.size(); ++i) EXPECT_NEAR(a[i], b[i], 1e-6);
  std::remove(path.c_str());
}

TEST_F(StatsToolsTest, CheckpointLoadFailsOnMissingFile) {
  Rng rng(3);
  auto model = baselines::MakeFactory(baselines::ModelKind::kFc,
                                      &env_.encoder())(&rng);
  EXPECT_FALSE(
      nn::LoadCheckpoint("/tmp/no_such_lighttr_ckpt", &model->params()).ok());
}

TEST_F(StatsToolsTest, PerClientEvaluationCoversEveryClient) {
  Rng rng(4);
  auto model = baselines::MakeFactory(baselines::ModelKind::kLightTr,
                                      &env_.encoder())(&rng);
  const auto per_client =
      eval::EvaluatePerClient(model.get(), env_.network(), clients_);
  ASSERT_EQ(per_client.size(), clients_.size());
  for (size_t i = 0; i < per_client.size(); ++i) {
    EXPECT_EQ(per_client[i].client_index, static_cast<int>(i));
    EXPECT_GT(per_client[i].metrics.recovered_points, 0);
    EXPECT_GE(per_client[i].metrics.recall, 0.0);
    EXPECT_LE(per_client[i].metrics.recall, 1.0);
  }
}

}  // namespace
}  // namespace lighttr
