#include "nn/tensor.h"

#include <algorithm>
#include <atomic>

#include "common/check.h"

namespace lighttr::nn {

namespace {
// Both thread_local: each pool worker builds and walks its own client's
// graph, so creation order only needs to be monotonic per thread (a
// backward graph never spans threads — ops created during one forward
// all run on one thread; shared leaves carry no backward_fn, so their
// cross-thread sequence values never influence the topological sort).
thread_local uint64_t g_sequence = 0;
thread_local int g_no_grad_depth = 0;
// Visit epochs are process-global (unlike g_sequence): a model's graph
// nodes outlive one round and may be walked from a different worker
// thread next round, so per-thread epochs could collide with a stale
// visit_tag and silently skip a node's backward_fn.
std::atomic<uint64_t> g_visit_epoch{0};
}  // namespace

NoGradScope::NoGradScope() { ++g_no_grad_depth; }
NoGradScope::~NoGradScope() { --g_no_grad_depth; }
bool NoGradScope::Active() { return g_no_grad_depth > 0; }

Tensor Tensor::Constant(Matrix value) {
  auto node = std::make_shared<TensorNode>();
  node->value = std::move(value);
  node->requires_grad = false;
  node->sequence = ++g_sequence;
  return Tensor(std::move(node));
}

Tensor Tensor::Variable(Matrix value) {
  auto node = std::make_shared<TensorNode>();
  node->value = std::move(value);
  node->requires_grad = true;
  node->sequence = ++g_sequence;
  return Tensor(std::move(node));
}

Tensor Tensor::MakeOp(Matrix value, std::vector<Tensor> parents,
                      std::function<void(TensorNode&)> backward_fn) {
  bool needs_grad = false;
  for (const Tensor& p : parents) {
    LIGHTTR_CHECK(p.defined());
    needs_grad = needs_grad || p.requires_grad();
  }
  if (NoGradScope::Active()) needs_grad = false;
  auto node = std::make_shared<TensorNode>();
  node->value = std::move(value);
  node->sequence = ++g_sequence;
  node->requires_grad = needs_grad;
  if (needs_grad) {
    node->parents = std::move(parents);
    node->backward_fn = std::move(backward_fn);
  }
  return Tensor(std::move(node));
}

Scalar Tensor::ScalarValue() const {
  LIGHTTR_CHECK_EQ(rows(), 1u);
  LIGHTTR_CHECK_EQ(cols(), 1u);
  return node_->value(0, 0);
}

void Tensor::Backward() {
  LIGHTTR_CHECK(defined());
  LIGHTTR_CHECK_EQ(node_->value.size(), 1u);
  if (!node_->requires_grad) return;  // graph has no trainable leaves

  // Collect reachable nodes (iterative DFS to survive deep BPTT
  // graphs). Visited marks live on the nodes themselves, stamped with a
  // fresh epoch per walk, so no pointer-keyed set is needed.
  const uint64_t epoch =
      g_visit_epoch.fetch_add(1, std::memory_order_relaxed) + 1;
  std::vector<TensorNode*> reachable;
  std::vector<TensorNode*> stack{node_.get()};
  node_->visit_tag = epoch;
  while (!stack.empty()) {
    TensorNode* current = stack.back();
    stack.pop_back();
    reachable.push_back(current);
    for (const Tensor& parent : current->parents) {
      TensorNode* p = parent.node();
      if (p->requires_grad && p->visit_tag != epoch) {
        p->visit_tag = epoch;
        stack.push_back(p);
      }
    }
  }

  // Creation order is a valid topological order of the dynamic graph.
  std::sort(reachable.begin(), reachable.end(),
            [](const TensorNode* a, const TensorNode* b) {
              return a->sequence > b->sequence;
            });

  node_->EnsureGrad()(0, 0) += Scalar{1};
  for (TensorNode* current : reachable) {
    if (current->backward_fn && !current->grad.empty()) {
      current->backward_fn(*current);
    }
  }
}

}  // namespace lighttr::nn
