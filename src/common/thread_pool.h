// Deterministic parallel execution substrate.
//
// A fixed-size worker pool exposing one primitive, ParallelFor(n, fn):
// run fn(0) .. fn(n-1) exactly once each, on the caller plus the pool's
// workers, and return when all are done. Work items must be independent
// of execution order; everything in this repo that runs on the pool is
// structured so that results are bitwise identical for any thread count
// (per-task RNG streams forked in canonical order, outputs written to
// pre-sized slots, floating-point reductions performed by the caller in
// canonical index order).
//
// This header is the only sanctioned home of raw std::thread in the
// repo (enforced by the `no-raw-thread` lint rule): bounding all
// parallelism to one substrate is what keeps the determinism contract
// and the TSan matrix meaningful.
#ifndef LIGHTTR_COMMON_THREAD_POOL_H_
#define LIGHTTR_COMMON_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace lighttr {

/// Fixed-size worker pool. A pool of size 1 spawns no threads at all:
/// ParallelFor degrades to a plain serial loop on the caller, which is
/// the bit-exact serial reference path (`--threads=1`).
class ThreadPool {
 public:
  /// Spawns `threads - 1` workers (the caller is the remaining
  /// executor). `threads` is clamped to at least 1.
  explicit ThreadPool(int threads);

  /// Joins all workers. No ParallelFor may be in flight.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total executor count (workers + the calling thread).
  int threads() const { return static_cast<int>(workers_.size()) + 1; }

  /// Runs fn(i) for every i in [0, n), each exactly once, distributing
  /// indices dynamically over the caller and the workers. Blocks until
  /// every index has completed. If any invocation throws, the first
  /// captured exception is rethrown on the caller after the barrier
  /// (remaining indices still run). Reentrant calls from inside a task
  /// run inline on the invoking thread — nested parallelism collapses
  /// to serial instead of deadlocking.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

  /// True when the current thread is a worker of *any* ThreadPool.
  /// Library kernels use this to stay serial inside pool tasks instead
  /// of re-entering a pool.
  static bool OnWorkerThread();

 private:
  struct Job {
    const std::function<void(size_t)>* fn = nullptr;
    size_t n = 0;
    std::atomic<size_t> next{0};  // next unclaimed index
    size_t workers_done = 0;      // guarded by ThreadPool::mutex_
    std::exception_ptr error;     // first failure, guarded by mutex_
  };

  void WorkerLoop();
  void RunShare(Job* job);

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable work_cv_;  // workers: a new job (or shutdown)
  std::condition_variable done_cv_;  // caller: all workers finished
  Job* job_ = nullptr;               // guarded by mutex_
  uint64_t generation_ = 0;          // bumped per job, guarded by mutex_
  bool shutdown_ = false;            // guarded by mutex_
};

/// Thread count from the environment: LIGHTTR_THREADS when set to a
/// valid positive integer, otherwise std::thread::hardware_concurrency
/// (at least 1). This is the process-wide default ("--threads=0").
int DefaultThreadCount();

/// Maps a requested thread count to an effective one: values >= 1 pass
/// through, everything else resolves to DefaultThreadCount().
int ResolveThreadCount(int requested);

/// Lazily constructed process-global pool (DefaultThreadCount() wide).
/// Shared by data-parallel kernels (e.g. the blocked GEMM row split).
ThreadPool* GlobalThreadPool();

/// Replaces the global pool with one of `threads` executors. Callers
/// must ensure no ParallelFor is running on the old pool. Used by the
/// --threads flag and by benchmarks sweeping thread counts.
void SetGlobalThreadCount(int threads);

}  // namespace lighttr

#endif  // LIGHTTR_COMMON_THREAD_POOL_H_
