// Unit and property tests for src/traj: generation, downsampling,
// workloads, and validation.
#include <gtest/gtest.h>

#include "roadnet/generators.h"
#include "roadnet/shortest_path.h"
#include "traj/downsample.h"
#include "traj/generator.h"
#include "traj/trajectory.h"
#include "traj/workload.h"

namespace lighttr::traj {
namespace {

roadnet::RoadNetwork TestCity(uint64_t seed = 1) {
  Rng rng(seed);
  roadnet::CityGridOptions options;
  options.rows = 7;
  options.cols = 7;
  return roadnet::GenerateCityGrid(options, &rng);
}

TEST(Generator, ProducesValidTrajectories) {
  const roadnet::RoadNetwork net = TestCity();
  const TrajectoryGenerator generator(net);
  Rng rng(2);
  GeneratorOptions options;
  for (int i = 0; i < 20; ++i) {
    auto result = generator.Generate(options, roadnet::kInvalidVertex, &rng);
    ASSERT_TRUE(result.ok());
    const MatchedTrajectory& t = result.value();
    EXPECT_GE(static_cast<int>(t.size()), options.min_points);
    EXPECT_LE(static_cast<int>(t.size()), options.max_points);
    EXPECT_TRUE(ValidateMatchedTrajectory(net, t).ok());
  }
}

TEST(Generator, ConsecutivePointsAdvanceAtPlausibleSpeed) {
  const roadnet::RoadNetwork net = TestCity();
  const TrajectoryGenerator generator(net);
  Rng rng(3);
  GeneratorOptions options;
  auto result = generator.Generate(options, roadnet::kInvalidVertex, &rng);
  ASSERT_TRUE(result.ok());
  const MatchedTrajectory& t = result.value();
  roadnet::DijkstraEngine engine(net);
  for (size_t i = 1; i < t.size(); ++i) {
    const double d = roadnet::DirectedTravelDistance(
        net, engine, t.points[i - 1].position, t.points[i].position);
    ASSERT_NE(d, roadnet::kUnreachable);
    const double speed = d / options.epsilon_s;
    // Within the configured cruise range plus jitter headroom, except the
    // last points which may idle at the route end.
    EXPECT_LE(speed, options.speed_mps_max * (1.0 + options.speed_jitter) + 0.5);
  }
}

TEST(Generator, HomeBiasKeepsStartsNearHome) {
  const roadnet::RoadNetwork net = TestCity();
  const TrajectoryGenerator generator(net);
  Rng rng(4);
  GeneratorOptions options;
  options.home_radius_m = 600.0;
  const roadnet::VertexId home = 24;  // middle of the grid
  int near = 0;
  const int trials = 30;
  for (int i = 0; i < trials; ++i) {
    auto result = generator.Generate(options, home, &rng);
    ASSERT_TRUE(result.ok());
    const geo::GeoPoint start =
        net.PositionToPoint(result.value().points[0].position);
    if (geo::HaversineMeters(start, net.vertex(home).position) <
        options.home_radius_m + 300.0) {
      ++near;
    }
  }
  EXPECT_GE(near, trials / 2);
}

TEST(Generator, TinyNetworkFailsGracefully) {
  const roadnet::RoadNetwork chain = roadnet::GenerateChain(2, 30.0);
  const TrajectoryGenerator generator(chain);
  Rng rng(5);
  GeneratorOptions options;
  options.min_points = 50;
  options.max_points = 50;
  // A 30 m chain cannot host kilometres of route.
  auto result = generator.Generate(options, roadnet::kInvalidVertex, &rng);
  EXPECT_FALSE(result.ok());
}

TEST(Downsample, EndpointsAlwaysKept) {
  const roadnet::RoadNetwork net = TestCity();
  const TrajectoryGenerator generator(net);
  Rng rng(6);
  auto result = generator.Generate({}, roadnet::kInvalidVertex, &rng);
  ASSERT_TRUE(result.ok());
  const IncompleteTrajectory icp =
      MakeIncomplete(std::move(result).value(), 0.1, &rng);
  EXPECT_TRUE(icp.observed.front());
  EXPECT_TRUE(icp.observed.back());
  EXPECT_EQ(icp.observed.size(), icp.ground_truth.size());
}

TEST(Downsample, KeepRatioStatistics) {
  const roadnet::RoadNetwork net = TestCity();
  const TrajectoryGenerator generator(net);
  Rng rng(7);
  int kept = 0;
  int interior = 0;
  for (int i = 0; i < 40; ++i) {
    auto result = generator.Generate({}, roadnet::kInvalidVertex, &rng);
    ASSERT_TRUE(result.ok());
    const IncompleteTrajectory icp =
        MakeIncomplete(std::move(result).value(), 0.25, &rng);
    for (size_t j = 1; j + 1 < icp.size(); ++j) {
      ++interior;
      kept += icp.observed[j] ? 1 : 0;
    }
  }
  EXPECT_NEAR(static_cast<double>(kept) / interior, 0.25, 0.04);
}

TEST(Downsample, ObservedAndMissingPartition) {
  const roadnet::RoadNetwork net = TestCity();
  const TrajectoryGenerator generator(net);
  Rng rng(8);
  auto result = generator.Generate({}, roadnet::kInvalidVertex, &rng);
  ASSERT_TRUE(result.ok());
  const IncompleteTrajectory icp =
      MakeIncomplete(std::move(result).value(), 0.125, &rng);
  EXPECT_EQ(icp.ObservedIndices().size() + icp.MissingIndices().size(),
            icp.size());
}

TEST(Downsample, StridedKeepsEveryKth) {
  MatchedTrajectory t;
  t.epsilon_s = 15.0;
  for (int i = 0; i < 17; ++i) {
    t.points.push_back(MatchedPoint{{0, 0.1}, i * 15.0, i});
  }
  const IncompleteTrajectory icp = MakeIncompleteStrided(std::move(t), 0.25);
  for (size_t i = 0; i < icp.size(); ++i) {
    const bool expected = (i % 4 == 0) || i + 1 == icp.size();
    EXPECT_EQ(icp.observed[i], expected) << i;
  }
}

TEST(ToRaw, NoNoiseMatchesGeometry) {
  const roadnet::RoadNetwork net = TestCity();
  const TrajectoryGenerator generator(net);
  Rng rng(9);
  auto result = generator.Generate({}, roadnet::kInvalidVertex, &rng);
  ASSERT_TRUE(result.ok());
  const MatchedTrajectory& matched = result.value();
  const RawTrajectory raw = ToRawTrajectory(net, matched, 0.0, nullptr);
  ASSERT_EQ(raw.points.size(), matched.size());
  for (size_t i = 0; i < raw.points.size(); ++i) {
    EXPECT_NEAR(geo::HaversineMeters(
                    raw.points[i].position,
                    net.PositionToPoint(matched.points[i].position)),
                0.0, 0.01);
    EXPECT_DOUBLE_EQ(raw.points[i].t, matched.points[i].t);
  }
}

TEST(ToRaw, NoiseHasRequestedScale) {
  const roadnet::RoadNetwork net = TestCity();
  const TrajectoryGenerator generator(net);
  Rng rng(10);
  GeneratorOptions options;
  options.min_points = 40;
  options.max_points = 40;
  auto result = generator.Generate(options, roadnet::kInvalidVertex, &rng);
  ASSERT_TRUE(result.ok());
  const MatchedTrajectory& matched = result.value();
  double sum_sq = 0.0;
  int n = 0;
  for (int trial = 0; trial < 20; ++trial) {
    const RawTrajectory raw = ToRawTrajectory(net, matched, 25.0, &rng);
    for (size_t i = 0; i < raw.points.size(); ++i) {
      const double d = geo::HaversineMeters(
          raw.points[i].position,
          net.PositionToPoint(matched.points[i].position));
      sum_sq += d * d;
      ++n;
    }
  }
  // E[d^2] = 2 sigma^2 for isotropic 2-D Gaussian noise.
  EXPECT_NEAR(std::sqrt(sum_sq / n / 2.0), 25.0, 3.0);
}

TEST(Validate, RejectsBadTrajectories) {
  const roadnet::RoadNetwork net = TestCity();
  MatchedTrajectory empty;
  empty.epsilon_s = 15.0;
  EXPECT_FALSE(ValidateMatchedTrajectory(net, empty).ok());

  MatchedTrajectory bad_tid;
  bad_tid.epsilon_s = 15.0;
  bad_tid.points = {MatchedPoint{{0, 0.5}, 0.0, 0},
                    MatchedPoint{{0, 0.6}, 30.0, 2}};
  EXPECT_FALSE(ValidateMatchedTrajectory(net, bad_tid).ok());

  MatchedTrajectory bad_ratio;
  bad_ratio.epsilon_s = 15.0;
  bad_ratio.points = {MatchedPoint{{0, 1.5}, 0.0, 0}};
  EXPECT_FALSE(ValidateMatchedTrajectory(net, bad_ratio).ok());

  MatchedTrajectory bad_segment;
  bad_segment.epsilon_s = 15.0;
  bad_segment.points = {MatchedPoint{{99999, 0.5}, 0.0, 0}};
  EXPECT_FALSE(ValidateMatchedTrajectory(net, bad_segment).ok());
}

TEST(Workload, SplitsAreSevenTwoOne) {
  const roadnet::RoadNetwork net = TestCity();
  WorkloadProfile profile = GeolifeLikeProfile();
  profile.trajectories_per_client = 20;
  FederatedWorkloadOptions options;
  options.num_clients = 3;
  Rng rng(11);
  const auto clients = GenerateFederatedWorkload(net, profile, options, &rng);
  ASSERT_EQ(clients.size(), 3u);
  for (const ClientDataset& client : clients) {
    EXPECT_EQ(client.TotalSize(), 20u);
    EXPECT_EQ(client.train.size(), 14u);
    EXPECT_EQ(client.valid.size(), 4u);
    EXPECT_EQ(client.test.size(), 2u);
    EXPECT_GE(client.home, 0);
  }
}

TEST(Workload, TinyClientStillHasAllSplits) {
  const roadnet::RoadNetwork net = TestCity();
  WorkloadProfile profile = TdriveLikeProfile();
  profile.trajectories_per_client = 3;
  FederatedWorkloadOptions options;
  options.num_clients = 2;
  Rng rng(12);
  const auto clients = GenerateFederatedWorkload(net, profile, options, &rng);
  for (const ClientDataset& client : clients) {
    EXPECT_GE(client.train.size(), 1u);
    EXPECT_GE(client.valid.size(), 1u);
    EXPECT_GE(client.test.size(), 1u);
  }
}

TEST(Workload, MergeTrainSetsConcatenates) {
  const roadnet::RoadNetwork net = TestCity();
  WorkloadProfile profile = TdriveLikeProfile();
  profile.trajectories_per_client = 10;
  FederatedWorkloadOptions options;
  options.num_clients = 4;
  Rng rng(13);
  const auto clients = GenerateFederatedWorkload(net, profile, options, &rng);
  size_t expected = 0;
  for (const auto& client : clients) expected += client.train.size();
  EXPECT_EQ(MergeTrainSets(clients).size(), expected);
}

TEST(Workload, ProfilesDifferAsDocumented) {
  const WorkloadProfile tdrive = TdriveLikeProfile();
  const WorkloadProfile geolife = GeolifeLikeProfile();
  EXPECT_GT(tdrive.gps_noise_m, geolife.gps_noise_m);
  EXPECT_LT(tdrive.trajectories_per_client, geolife.trajectories_per_client);
  EXPECT_LT(tdrive.generator.max_points, geolife.generator.max_points);
}

// Property: downsampling preserves the ground truth across keep ratios.
class DownsampleProperty : public ::testing::TestWithParam<double> {};

TEST_P(DownsampleProperty, GroundTruthUntouched) {
  const roadnet::RoadNetwork net = TestCity();
  const TrajectoryGenerator generator(net);
  Rng rng(14);
  auto result = generator.Generate({}, roadnet::kInvalidVertex, &rng);
  ASSERT_TRUE(result.ok());
  const MatchedTrajectory original = result.value();
  const IncompleteTrajectory icp =
      MakeIncomplete(MatchedTrajectory(original), GetParam(), &rng);
  ASSERT_EQ(icp.ground_truth.size(), original.size());
  for (size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(icp.ground_truth.points[i].position,
              original.points[i].position);
  }
}

INSTANTIATE_TEST_SUITE_P(KeepRatios, DownsampleProperty,
                         ::testing::Values(0.0625, 0.125, 0.25, 0.5, 1.0));

}  // namespace
}  // namespace lighttr::traj
