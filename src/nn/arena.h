// Thread-local tensor arena: a size-classed pool allocator behind every
// Matrix (and therefore every Tensor temporary).
//
// Training allocates the same handful of shapes thousands of times per
// round — gate pre-activations, gradients, packed GEMM operands. The
// arena turns that churn into freelist hits: blocks are 32-byte aligned
// (AVX2 vector width), bucketed by power-of-two element count, and
// recycled on release instead of returned to the heap. Steady-state
// rounds perform ~0 heap allocations in the tensor hot path (the
// `bench_kernels --smoke` gate asserts this).
//
// Determinism: the arena hands out storage only — values are always
// written before being read (ArenaBuffer zero-fills on construction),
// so recycling cannot leak state between tensors. Freelists are plain
// vectors (LIFO), never address-ordered maps, keeping the determinism
// lint family happy and the reuse pattern independent of allocator
// addresses.
//
// Thread-safety: one arena per thread (thread_local), zero locks.
// Blocks are fungible heap memory: a buffer released on a different
// thread than it was acquired on simply joins the releasing thread's
// pool (long-lived model state built on the coordinator but retired on
// a pool worker stays safe — only the per-thread stats attribution
// shifts).
#ifndef LIGHTTR_NN_ARENA_H_
#define LIGHTTR_NN_ARENA_H_

#include <cstddef>
#include <cstdint>

namespace lighttr::nn {

/// Numeric type of all network math. Double keeps finite-difference
/// gradient checks tight; at these model sizes it is not slower than
/// float on scalar CPU code. (Lives here, below matrix.h, so the arena
/// can size blocks in elements.)
using Scalar = double;

/// Lifetime counters of one thread's arena. Deltas across a workload
/// are the allocation-churn metric: a steady-state training round must
/// show pool_hits advancing while heap_allocations stays flat.
struct ArenaStats {
  int64_t acquires = 0;          // total Acquire() calls
  int64_t pool_hits = 0;         // served from a freelist
  int64_t heap_allocations = 0;  // fell through to ::operator new
  int64_t releases = 0;          // total Release() calls
  int64_t cached_blocks = 0;     // currently parked in freelists
  int64_t cached_bytes = 0;      // bytes parked in freelists
};

/// This thread's arena stats (see ArenaStats).
ArenaStats ThreadArenaStats();

/// Frees every block cached by this thread's arena (stats keep their
/// lifetime counts). Used by tests to prove reuse semantics and by
/// long-lived processes to return memory after a burst.
void TrimThreadArena();

/// When true, Acquire/Release on this thread bypass the freelists and
/// hit the heap directly — the "no arena" baseline for bench_kernels.
/// Returns the previous value.
bool SetArenaBypass(bool bypass);

/// Raw arena entry points (ArenaBuffer is the owning wrapper).
/// AcquireArenaBlock returns a 32-byte-aligned, uninitialised block of
/// at least `elements` Scalars; ReleaseArenaBlock parks it for reuse.
/// `elements` must be the same value passed to Acquire.
Scalar* AcquireArenaBlock(size_t elements);
void ReleaseArenaBlock(Scalar* block, size_t elements);

/// Value-semantic Scalar buffer drawing from the thread arena — the
/// storage behind Matrix. Mirrors the std::vector<Scalar> it replaced:
/// sized construction zero-fills, copies are deep, moves steal.
class ArenaBuffer {
 public:
  ArenaBuffer() = default;
  explicit ArenaBuffer(size_t size);
  ArenaBuffer(const ArenaBuffer& other);
  ArenaBuffer(ArenaBuffer&& other) noexcept;
  ArenaBuffer& operator=(const ArenaBuffer& other);
  ArenaBuffer& operator=(ArenaBuffer&& other) noexcept;
  ~ArenaBuffer();

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  Scalar* data() { return data_; }
  const Scalar* data() const { return data_; }
  Scalar& operator[](size_t i) { return data_[i]; }
  Scalar operator[](size_t i) const { return data_[i]; }

  Scalar* begin() { return data_; }
  Scalar* end() { return data_ + size_; }
  const Scalar* begin() const { return data_; }
  const Scalar* end() const { return data_ + size_; }

 private:
  Scalar* data_ = nullptr;
  size_t size_ = 0;
};

}  // namespace lighttr::nn

#endif  // LIGHTTR_NN_ARENA_H_
