// Tests for the durability layer: run-state snapshot integrity, the
// CRC-tagged round journal, crash injection at every CrashPoint, and
// bitwise-identical resume of an interrupted federated run.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "common/crc32.h"
#include "common/file_util.h"
#include "fl/federated_trainer.h"
#include "fl/run_state.h"
#include "nn/losses.h"
#include "roadnet/generators.h"
#include "traj/generator.h"
#include "traj/workload.h"

namespace lighttr::fl {
namespace {

// Same minimal RecoveryModel as fl_test: one scalar parameter trained
// toward the per-trajectory driver_id.
class StubModel : public RecoveryModel {
 public:
  explicit StubModel(Rng* rng) {
    w_ = nn::Tensor::Variable(
        nn::Matrix::Full(1, 1, rng != nullptr ? rng->Uniform(-1, 1) : 0.0));
    params_.Register("w", w_);
  }

  const std::string& name() const override { return name_; }
  nn::ParameterSet& params() override { return params_; }

  ForwardResult Forward(const traj::IncompleteTrajectory& trajectory,
                        bool /*training*/, Rng* /*rng*/) override {
    nn::Matrix target(1, 1);
    target(0, 0) = static_cast<nn::Scalar>(trajectory.ground_truth.driver_id);
    ForwardResult result;
    result.loss = nn::MseLoss(w_, target);
    result.representation = w_;
    return result;
  }

  std::vector<roadnet::PointPosition> Recover(
      const traj::IncompleteTrajectory& trajectory) override {
    return std::vector<roadnet::PointPosition>(trajectory.size(),
                                               roadnet::PointPosition{0, 0.0});
  }

 private:
  std::string name_ = "Stub";
  nn::ParameterSet params_;
  nn::Tensor w_;
};

std::unique_ptr<RecoveryModel> MakeStub(Rng* rng) {
  return std::make_unique<StubModel>(rng);
}

std::vector<traj::ClientDataset> MakeClients(int n, uint64_t seed,
                                             int per_client = 6) {
  Rng rng(seed);
  roadnet::CityGridOptions options;
  options.rows = 6;
  options.cols = 6;
  static roadnet::RoadNetwork net = roadnet::GenerateCityGrid(options, &rng);
  traj::WorkloadProfile profile = traj::TdriveLikeProfile();
  profile.trajectories_per_client = per_client;
  traj::FederatedWorkloadOptions workload;
  workload.num_clients = n;
  return traj::GenerateFederatedWorkload(net, profile, workload, &rng);
}

// A lossy 30-round configuration so resume must restore the fault RNG
// stream (drops, retries, backoff jitter) as well as the model state.
FederatedTrainerOptions LossyOptions(int rounds = 30) {
  FederatedTrainerOptions options;
  options.rounds = rounds;
  options.local_epochs = 2;
  options.learning_rate = 0.05;
  options.faults.dropout_rate = 0.2;
  options.faults.corruption_rate = 0.05;
  options.tolerance.retry.max_retries = 2;
  return options;
}

std::string FreshDir(const std::string& name) {
  const std::string dir =
      (std::filesystem::path(::testing::TempDir()) / name).generic_string();
  std::filesystem::remove_all(dir);
  return dir;
}

std::vector<nn::Scalar> FinalParams(FederatedTrainer* trainer) {
  return trainer->global_model()->params().Flatten();
}

// Every field except wall-clock time must survive resume bitwise.
void ExpectSameRecord(const RoundRecord& a, const RoundRecord& b) {
  EXPECT_EQ(a.round, b.round);
  EXPECT_EQ(a.mean_train_loss, b.mean_train_loss);
  EXPECT_EQ(a.global_valid_accuracy, b.global_valid_accuracy);
  EXPECT_EQ(a.sampled, b.sampled);
  EXPECT_EQ(a.reporting, b.reporting);
  EXPECT_EQ(a.drops, b.drops);
  EXPECT_EQ(a.retries, b.retries);
  EXPECT_EQ(a.stragglers, b.stragglers);
  EXPECT_EQ(a.rejected_uploads, b.rejected_uploads);
  EXPECT_EQ(a.quorum_met, b.quorum_met);
}

void ExpectSameResult(const FederatedRunResult& a,
                      const FederatedRunResult& b) {
  EXPECT_EQ(a.comm.bytes_downlink, b.comm.bytes_downlink);
  EXPECT_EQ(a.comm.bytes_uplink, b.comm.bytes_uplink);
  EXPECT_EQ(a.comm.messages, b.comm.messages);
  EXPECT_EQ(a.comm.rounds, b.comm.rounds);
  EXPECT_EQ(a.faults.drops, b.faults.drops);
  EXPECT_EQ(a.faults.retries, b.faults.retries);
  EXPECT_EQ(a.faults.stragglers, b.faults.stragglers);
  EXPECT_EQ(a.faults.rejected_uploads, b.faults.rejected_uploads);
  EXPECT_EQ(a.faults.clipped_uploads, b.faults.clipped_uploads);
  EXPECT_EQ(a.faults.quorum_misses, b.faults.quorum_misses);
  EXPECT_EQ(a.faults.sampled_clients, b.faults.sampled_clients);
  EXPECT_EQ(a.faults.reporting_clients, b.faults.reporting_clients);
  EXPECT_EQ(a.faults.simulated_backoff_s, b.faults.simulated_backoff_s);
  ASSERT_EQ(a.history.size(), b.history.size());
  for (size_t i = 0; i < a.history.size(); ++i) {
    ExpectSameRecord(a.history[i], b.history[i]);
  }
}

void CorruptFile(const std::string& path) {
  Result<std::string> contents = ReadFile(path);
  ASSERT_TRUE(contents.ok()) << contents.status().ToString();
  std::string bytes = contents.value();
  ASSERT_FALSE(bytes.empty());
  bytes[bytes.size() / 2] ^= static_cast<char>(0x40);
  ASSERT_TRUE(WriteFileAtomic(path, bytes).ok());
}

// ---------------------------------------------------------------------
// ServerRunState encode / decode

ServerRunState MakeState() {
  ServerRunState state;
  state.round = 12;
  Rng rng(5);
  rng.Uniform();
  state.rng_state = rng.SerializeState();
  state.fault_rng_state = Rng(6).SerializeState();
  state.comm.bytes_downlink = 100;
  state.comm.bytes_uplink = 90;
  state.comm.messages = 40;
  state.comm.rounds = 12;
  state.faults.drops = 3;
  state.faults.retries = 5;
  state.faults.simulated_backoff_s = 1.25;
  state.global_params_blob = "pretend-checkpoint-bytes";
  state.optimizer_blobs = {"opt-a", "opt-b", std::string("\0\x01", 2)};
  return state;
}

TEST(RunState, EncodeDecodeRoundTrips) {
  const ServerRunState state = MakeState();
  ServerRunState out;
  ASSERT_TRUE(DecodeRunState(EncodeRunState(state), &out).ok());
  EXPECT_EQ(out.round, state.round);
  EXPECT_EQ(out.rng_state, state.rng_state);
  EXPECT_EQ(out.fault_rng_state, state.fault_rng_state);
  EXPECT_EQ(out.comm.bytes_downlink, state.comm.bytes_downlink);
  EXPECT_EQ(out.faults.retries, state.faults.retries);
  EXPECT_EQ(out.faults.simulated_backoff_s, state.faults.simulated_backoff_s);
  EXPECT_EQ(out.global_params_blob, state.global_params_blob);
  EXPECT_EQ(out.optimizer_blobs, state.optimizer_blobs);
}

TEST(RunState, DecodeRejectsAnySingleBitFlip) {
  const std::string encoded = EncodeRunState(MakeState());
  // Flip one bit at a spread of positions (every byte would be slow).
  for (size_t pos = 0; pos < encoded.size(); pos += 7) {
    std::string damaged = encoded;
    damaged[pos] = static_cast<char>(damaged[pos] ^ 0x10);
    ServerRunState out;
    EXPECT_FALSE(DecodeRunState(damaged, &out).ok())
        << "bit flip at byte " << pos << " was not detected";
  }
}

TEST(RunState, DecodeRejectsTruncation) {
  const std::string encoded = EncodeRunState(MakeState());
  for (size_t keep : {size_t{0}, size_t{3}, size_t{10}, encoded.size() - 1}) {
    ServerRunState out;
    EXPECT_FALSE(DecodeRunState(encoded.substr(0, keep), &out).ok());
  }
}

TEST(RunState, SaveLoadThroughDisk) {
  const std::string dir = FreshDir("run_state_disk");
  const std::string path = SnapshotPath(dir, 7);
  ASSERT_TRUE(SaveRunState(path, MakeState()).ok());
  Result<ServerRunState> loaded = LoadRunState(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().round, 12);
  EXPECT_FALSE(LoadRunState(SnapshotPath(dir, 8)).ok());  // missing file
}

TEST(RunState, ListAndPruneSnapshots) {
  const std::string dir = FreshDir("run_state_list");
  EXPECT_FALSE(ListSnapshotRounds(dir).ok());  // NotFound before any save
  for (int round : {4, 8, 12, 16}) {
    ASSERT_TRUE(SaveRunState(SnapshotPath(dir, round), MakeState()).ok());
  }
  // In-flight temp files and unrelated names are ignored.
  ASSERT_TRUE(AppendToFile(SnapshotPath(dir, 20) + ".tmp", "partial").ok());
  ASSERT_TRUE(
      AppendToFile((std::filesystem::path(dir) / "notes.txt").string(), "x")
          .ok());
  Result<std::vector<int>> rounds = ListSnapshotRounds(dir);
  ASSERT_TRUE(rounds.ok());
  EXPECT_EQ(rounds.value(), (std::vector<int>{4, 8, 12, 16}));

  PruneSnapshots(dir, 2);
  rounds = ListSnapshotRounds(dir);
  ASSERT_TRUE(rounds.ok());
  EXPECT_EQ(rounds.value(), (std::vector<int>{12, 16}));
}

// ---------------------------------------------------------------------
// Round journal

RoundRecord MakeRecord(int round) {
  RoundRecord record;
  record.round = round;
  record.mean_train_loss = 0.125 + round * 1e-17;  // exercise %.17g
  record.global_valid_accuracy = 1.0 / 3.0;
  record.wall_seconds = 0.002;
  record.sampled = 4;
  record.reporting = 3;
  record.drops = 1;
  record.retries = 2;
  record.quorum_met = round % 2 == 0;
  return record;
}

TEST(Journal, AppendReadRoundTripsBitwise) {
  const std::string dir = FreshDir("journal_roundtrip");
  for (int round = 1; round <= 5; ++round) {
    ASSERT_TRUE(AppendJournalRecord(dir, MakeRecord(round)).ok());
  }
  Result<std::vector<RoundRecord>> records = ReadJournal(dir);
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records.value().size(), 5u);
  for (int round = 1; round <= 5; ++round) {
    ExpectSameRecord(records.value()[round - 1], MakeRecord(round));
    // Doubles must round-trip exactly through the text format.
    EXPECT_EQ(records.value()[round - 1].wall_seconds, 0.002);
  }
}

TEST(Journal, TornTailIsDroppedNotFatal) {
  const std::string dir = FreshDir("journal_torn");
  ASSERT_TRUE(AppendJournalRecord(dir, MakeRecord(1)).ok());
  ASSERT_TRUE(AppendJournalRecord(dir, MakeRecord(2)).ok());
  // A crash mid-append leaves a half-written line with a broken CRC.
  ASSERT_TRUE(
      AppendToFile((std::filesystem::path(dir) / "journal.log").string(),
                   "3 0.5 0.5 0.1 4 3 1")
          .ok());
  Result<std::vector<RoundRecord>> records = ReadJournal(dir);
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records.value().size(), 2u);
  EXPECT_EQ(records.value().back().round, 2);
}

TEST(Journal, MissingJournalIsEmptyHistory) {
  const std::string dir = FreshDir("journal_missing");
  std::filesystem::create_directories(dir);
  Result<std::vector<RoundRecord>> records = ReadJournal(dir);
  ASSERT_TRUE(records.ok());
  EXPECT_TRUE(records.value().empty());
}

// Forward compatibility: a newer build may append further columns to
// the journal line. The CRC vouches for the whole body, and this build
// must parse the prefix it understands and ignore the extras.
TEST(Journal, ExtraTrailingFieldsFromNewerBuildsAreTolerated) {
  const std::string dir = FreshDir("journal_forward");
  ASSERT_TRUE(AppendJournalRecord(dir, MakeRecord(1)).ok());
  ASSERT_TRUE(AppendJournalRecord(dir, MakeRecord(2)).ok());
  const std::string path =
      (std::filesystem::path(dir) / "journal.log").string();
  Result<std::string> contents = ReadFile(path);
  ASSERT_TRUE(contents.ok());
  std::string text = contents.value();
  ASSERT_FALSE(text.empty());
  ASSERT_EQ(text.back(), '\n');
  text.pop_back();
  // Graft two extra columns onto record 2's body and re-sign the line.
  const size_t line_start = text.rfind('\n') + 1;
  const size_t crc_space = text.rfind(' ');
  ASSERT_GT(crc_space, line_start);
  std::string body = text.substr(line_start, crc_space - line_start);
  body += " 7 0.25";
  char crc[16];
  std::snprintf(crc, sizeof(crc), "%08x", Crc32(body));
  text = text.substr(0, line_start) + body + " " + crc + "\n";
  ASSERT_TRUE(WriteFileAtomic(path, text).ok());

  Result<std::vector<RoundRecord>> records = ReadJournal(dir);
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records.value().size(), 2u);
  ExpectSameRecord(records.value()[1], MakeRecord(2));
}

// Backward compatibility: an eleven-field line written by the
// pre-self-healing build still parses, with the healing columns left at
// their defaults.
TEST(Journal, LegacyElevenFieldLinesStillParse) {
  const std::string dir = FreshDir("journal_v1");
  std::filesystem::create_directories(dir);
  const std::string body = "9 0.5 0.25 0.001 4 3 1 2 0 1 1";
  char crc[16];
  std::snprintf(crc, sizeof(crc), "%08x", Crc32(body));
  ASSERT_TRUE(
      AppendToFile((std::filesystem::path(dir) / "journal.log").string(),
                   body + " " + std::string(crc) + "\n")
          .ok());
  Result<std::vector<RoundRecord>> records = ReadJournal(dir);
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records.value().size(), 1u);
  const RoundRecord& r = records.value()[0];
  EXPECT_EQ(r.round, 9);
  EXPECT_EQ(r.sampled, 4);
  EXPECT_EQ(r.retries, 2);
  EXPECT_TRUE(r.quorum_met);
  EXPECT_EQ(r.valid_loss, 0.0);
  EXPECT_EQ(r.verdict, 0);
  EXPECT_EQ(r.outlier_uploads, 0);
  EXPECT_EQ(r.quarantined, 0);
  EXPECT_EQ(r.skipped_quarantined, 0);
  EXPECT_FALSE(r.escalated);
}

TEST(Journal, RewriteTruncatesAtomically) {
  const std::string dir = FreshDir("journal_rewrite");
  for (int round = 1; round <= 6; ++round) {
    ASSERT_TRUE(AppendJournalRecord(dir, MakeRecord(round)).ok());
  }
  ASSERT_TRUE(
      RewriteJournal(dir, {MakeRecord(1), MakeRecord(2), MakeRecord(3)}).ok());
  Result<std::vector<RoundRecord>> records = ReadJournal(dir);
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records.value().size(), 3u);
  EXPECT_EQ(records.value().back().round, 3);
}

// ---------------------------------------------------------------------
// Crash injection + resume (end to end)

TEST(CrashRecovery, DurabilityDoesNotPerturbTraining) {
  auto clients = MakeClients(4, 51);
  FederatedTrainer plain(MakeStub, &clients, LossyOptions());
  const FederatedRunResult plain_result = plain.Run();

  FederatedTrainerOptions durable_options = LossyOptions();
  durable_options.durability.dir = FreshDir("durability_noop");
  durable_options.durability.snapshot_every = 3;
  FederatedTrainer durable(MakeStub, &clients, durable_options);
  const FederatedRunResult durable_result = durable.Run();

  ExpectSameResult(plain_result, durable_result);
  EXPECT_EQ(FinalParams(&plain), FinalParams(&durable));
}

// The acceptance matrix: for every CrashPoint, a run killed mid-flight
// and resumed in a fresh process (trainer) must converge to the exact
// bits of an uninterrupted run, telemetry included.
TEST(CrashRecovery, EveryCrashPointResumesBitwiseIdentical) {
  auto clients = MakeClients(4, 53);
  FederatedTrainer baseline(MakeStub, &clients, LossyOptions());
  const FederatedRunResult expected = baseline.Run();
  const std::vector<nn::Scalar> expected_params = FinalParams(&baseline);

  struct Case {
    CrashPoint point;
    int round;
  };
  // Save-point crashes must land on a snapshot round (every 3rd);
  // kMidRound may land anywhere.
  const Case cases[] = {
      {CrashPoint::kBeforeSave, 15},
      {CrashPoint::kMidSave, 15},
      {CrashPoint::kAfterSave, 15},
      {CrashPoint::kMidRound, 17},
  };
  for (const Case& c : cases) {
    SCOPED_TRACE(CrashPointName(c.point));
    FederatedTrainerOptions options = LossyOptions();
    options.durability.dir =
        FreshDir(std::string("crash_") + CrashPointName(c.point));
    options.durability.snapshot_every = 3;
    options.durability.crash_point = c.point;
    options.durability.crash_round = c.round;

    bool crashed = false;
    {
      FederatedTrainer victim(MakeStub, &clients, options);
      try {
        victim.Run();
      } catch (const InjectedCrash& crash) {
        crashed = true;
        EXPECT_EQ(crash.point, c.point);
        EXPECT_EQ(crash.round, c.round);
      }
    }
    ASSERT_TRUE(crashed);

    options.durability.crash_point = CrashPoint::kNone;
    options.durability.crash_round = 0;
    options.durability.resume = true;
    FederatedTrainer resumed(MakeStub, &clients, options);
    const FederatedRunResult result = resumed.Run();
    EXPECT_GT(resumed.resumed_round(), 0);       // actually resumed,
    EXPECT_LT(resumed.resumed_round(), c.round + 1);  // from before the crash
    ExpectSameResult(expected, result);
    EXPECT_EQ(expected_params, FinalParams(&resumed));
  }
}

// Thread count is a pure performance knob even across a crash: a run
// interrupted at one width and resumed at another must replay to the
// exact result of an uninterrupted serial run. (The snapshot carries
// only rng_/fault_rng_ states; the per-round per-client streams are
// re-forked from them in canonical order, identically at any width.)
TEST(CrashRecovery, ResumeUnderDifferentThreadCountIsBitwiseIdentical) {
  auto clients = MakeClients(4, 53);
  FederatedTrainerOptions serial_options = LossyOptions();
  serial_options.threads = 1;
  FederatedTrainer baseline(MakeStub, &clients, serial_options);
  const FederatedRunResult expected = baseline.Run();
  const std::vector<nn::Scalar> expected_params = FinalParams(&baseline);

  FederatedTrainerOptions options = LossyOptions();
  options.threads = 8;
  options.durability.dir = FreshDir("crash_threads");
  options.durability.snapshot_every = 3;
  options.durability.crash_point = CrashPoint::kMidRound;
  options.durability.crash_round = 17;

  bool crashed = false;
  {
    FederatedTrainer victim(MakeStub, &clients, options);
    try {
      victim.Run();
    } catch (const InjectedCrash& crash) {
      crashed = true;
      EXPECT_EQ(crash.point, CrashPoint::kMidRound);
    }
  }
  ASSERT_TRUE(crashed);

  options.threads = 2;
  options.durability.crash_point = CrashPoint::kNone;
  options.durability.crash_round = 0;
  options.durability.resume = true;
  FederatedTrainer resumed(MakeStub, &clients, options);
  const FederatedRunResult result = resumed.Run();
  EXPECT_GT(resumed.resumed_round(), 0);
  ExpectSameResult(expected, result);
  EXPECT_EQ(expected_params, FinalParams(&resumed));
}

TEST(CrashRecovery, CorruptedLatestSnapshotFallsBackToPrevious) {
  auto clients = MakeClients(4, 55);
  FederatedTrainer baseline(MakeStub, &clients, LossyOptions());
  const FederatedRunResult expected = baseline.Run();
  const std::vector<nn::Scalar> expected_params = FinalParams(&baseline);

  FederatedTrainerOptions options = LossyOptions();
  options.durability.dir = FreshDir("corrupt_latest");
  options.durability.snapshot_every = 1;
  options.durability.keep_snapshots = 3;
  {
    FederatedTrainer first(MakeStub, &clients, options);
    first.Run();
  }
  // Damage the newest snapshot; the checksum must reject it and resume
  // must fall back to round 29 and re-run the final round.
  CorruptFile(SnapshotPath(options.durability.dir, 30));

  options.durability.resume = true;
  FederatedTrainer resumed(MakeStub, &clients, options);
  ASSERT_TRUE(resumed.ResumeFrom(options.durability.dir).ok());
  EXPECT_EQ(resumed.resumed_round(), 29);
  const FederatedRunResult result = resumed.Run();
  ExpectSameResult(expected, result);
  EXPECT_EQ(expected_params, FinalParams(&resumed));
}

TEST(CrashRecovery, AllSnapshotsCorruptedIsAnErrorNotACrash) {
  auto clients = MakeClients(3, 57);
  FederatedTrainerOptions options = LossyOptions(6);
  options.durability.dir = FreshDir("corrupt_all");
  options.durability.snapshot_every = 2;
  {
    FederatedTrainer first(MakeStub, &clients, options);
    first.Run();
  }
  Result<std::vector<int>> rounds = ListSnapshotRounds(options.durability.dir);
  ASSERT_TRUE(rounds.ok());
  for (int round : rounds.value()) {
    CorruptFile(SnapshotPath(options.durability.dir, round));
  }
  FederatedTrainer resumed(MakeStub, &clients, options);
  const Status status = resumed.ResumeFrom(options.durability.dir);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(resumed.resumed_round(), 0);
}

TEST(CrashRecovery, ResumeFromEmptyDirectoryStartsFresh) {
  auto clients = MakeClients(3, 59);
  FederatedTrainerOptions options = LossyOptions(4);
  FederatedTrainer baseline(MakeStub, &clients, options);
  const FederatedRunResult expected = baseline.Run();

  options.durability.dir = FreshDir("resume_fresh");
  options.durability.resume = true;
  FederatedTrainer trainer(MakeStub, &clients, options);
  const FederatedRunResult result = trainer.Run();
  EXPECT_EQ(trainer.resumed_round(), 0);
  ExpectSameResult(expected, result);
}

TEST(CrashRecovery, MidSaveLeavesOnlyATempFile) {
  auto clients = MakeClients(3, 61);
  FederatedTrainerOptions options = LossyOptions(6);
  options.durability.dir = FreshDir("midsave_tmp");
  options.durability.snapshot_every = 2;
  options.durability.crash_point = CrashPoint::kMidSave;
  options.durability.crash_round = 2;  // first snapshot ever
  FederatedTrainer victim(MakeStub, &clients, options);
  EXPECT_THROW(victim.Run(), InjectedCrash);

  // The torn temp file must not be mistaken for a snapshot.
  Result<std::vector<int>> rounds = ListSnapshotRounds(options.durability.dir);
  ASSERT_TRUE(rounds.ok());
  EXPECT_TRUE(rounds.value().empty());
  EXPECT_TRUE(std::filesystem::exists(
      SnapshotPath(options.durability.dir, 2) + ".tmp"));
}

}  // namespace
}  // namespace lighttr::fl
