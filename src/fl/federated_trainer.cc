#include "fl/federated_trainer.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/stopwatch.h"

namespace lighttr::fl {

double PlainLocalUpdate::Update(int /*client_index*/, RecoveryModel* model,
                                nn::Optimizer* optimizer,
                                const traj::ClientDataset& data, int epochs,
                                Rng* rng) {
  LocalTrainOptions options;
  options.epochs = epochs;
  return TrainLocal(model, optimizer, data.train, options, rng);
}

FederatedTrainer::FederatedTrainer(
    ModelFactory factory, const std::vector<traj::ClientDataset>* clients,
    FederatedTrainerOptions options)
    : clients_(clients), options_(options), rng_(options.seed) {
  LIGHTTR_CHECK(clients != nullptr);
  LIGHTTR_CHECK(!clients->empty());
  LIGHTTR_CHECK_GT(options_.client_fraction, 0.0);
  LIGHTTR_CHECK_LE(options_.client_fraction, 1.0);
  LIGHTTR_CHECK_GE(options_.rounds, 1);
  LIGHTTR_CHECK_GE(options_.local_epochs, 1);

  Rng init_rng = rng_.Fork();
  global_model_ = factory(&init_rng);
  LIGHTTR_CHECK(global_model_ != nullptr);
  for (size_t i = 0; i < clients->size(); ++i) {
    Rng client_rng = rng_.Fork();
    client_models_.push_back(factory(&client_rng));
    // All replicas must agree on the parameter layout.
    LIGHTTR_CHECK_EQ(client_models_.back()->params().NumScalars(),
                     global_model_->params().NumScalars());
    client_optimizers_.push_back(std::make_unique<nn::AdamOptimizer>(
        static_cast<nn::Scalar>(options_.learning_rate)));
  }
}

FederatedRunResult FederatedTrainer::Run(LocalUpdateStrategy* strategy) {
  PlainLocalUpdate plain;
  if (strategy == nullptr) strategy = &plain;

  const int num_clients = static_cast<int>(clients_->size());
  const int sampled = std::max(
      1, static_cast<int>(std::llround(options_.client_fraction *
                                       static_cast<double>(num_clients))));
  const int64_t wire_bytes = global_model_->params().WireBytes();

  FederatedRunResult result;
  for (int round = 1; round <= options_.rounds; ++round) {
    Stopwatch watch;
    // Algorithm 3 line 2: randomly select C clients.
    const std::vector<size_t> selected = rng_.SampleWithoutReplacement(
        static_cast<size_t>(num_clients), static_cast<size_t>(sampled));

    // Lines 3-10: download, local training, upload.
    const std::string global_blob = global_model_->params().Serialize();
    const std::vector<nn::Scalar> global_flat =
        global_model_->params().Flatten();
    std::vector<std::vector<nn::Scalar>> uploads;
    double loss_sum = 0.0;
    for (size_t client_index : selected) {
      RecoveryModel* client = client_models_[client_index].get();
      LIGHTTR_CHECK_OK(client->params().Deserialize(global_blob));
      result.comm.bytes_downlink += wire_bytes;
      ++result.comm.messages;

      Rng update_rng = rng_.Fork();
      loss_sum += strategy->Update(static_cast<int>(client_index), client,
                                   client_optimizers_[client_index].get(),
                                   (*clients_)[client_index],
                                   options_.local_epochs, &update_rng);

      std::vector<nn::Scalar> upload = client->params().Flatten();
      if (options_.privacy.enabled()) {
        Rng noise_rng = rng_.Fork();
        upload =
            PrivatizeUpload(upload, global_flat, options_.privacy, &noise_rng);
      }
      if (options_.quantize_uploads) {
        const QuantizedBlob blob = QuantizeFlat(upload);
        result.comm.bytes_uplink += blob.WireBytes();
        upload = DequantizeFlat(blob);
      } else {
        result.comm.bytes_uplink += wire_bytes;
      }
      uploads.push_back(std::move(upload));
      ++result.comm.messages;
    }

    // Line 11: theta_s <- (1/C) sum theta_ci.
    global_model_->params().AssignFlat(nn::AverageFlat(uploads));
    ++result.comm.rounds;

    // Telemetry: validation accuracy of the new global model over a
    // bounded sample of client validation sets.
    double valid_acc = 0.0;
    {
      std::vector<traj::IncompleteTrajectory> pool;
      for (const traj::ClientDataset& client : *clients_) {
        for (const auto& trajectory : client.valid) {
          pool.push_back(trajectory);
          if (pool.size() >= 40) break;
        }
        if (pool.size() >= 40) break;
      }
      valid_acc = EvaluateSegmentAccuracy(global_model_.get(), pool);
    }
    result.history.push_back(RoundRecord{
        round, loss_sum / static_cast<double>(selected.size()), valid_acc,
        watch.ElapsedSeconds()});
  }
  return result;
}

}  // namespace lighttr::fl
