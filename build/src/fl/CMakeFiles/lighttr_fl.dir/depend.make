# Empty dependencies file for lighttr_fl.
# This may be replaced when dependencies are built.
