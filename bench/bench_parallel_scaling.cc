// Parallel scaling of the execution substrate (thread pool + blocked
// GEMM + concurrent per-round client training), swept over thread
// counts {1, 2, 4, 8}.
//
// Two sections:
//  1. GEMM kernels: the seed's naive i-k-j triple loop (kept here as a
//     local reference copy) vs the cache-blocked kernel at one thread
//     (pure kernel speedup) and at 2/4/8 threads (row-split scaling).
//  2. Federated rounds: one LightTR experiment per thread count; the
//     per-round client loop is where the trainer's pool fans out.
//
// Reports speedup vs 1 thread, parallel efficiency (speedup / threads),
// and GFLOP/s for the GEMM section; emits both a human table and
// BENCH_parallel_scaling.json. On hardware with fewer physical cores
// than the swept width, oversubscribed rows mainly demonstrate that
// determinism and correctness hold (efficiency will sit near 1/threads).
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_output.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "common/table_printer.h"
#include "common/thread_pool.h"
#include "eval/harness.h"
#include "nn/flops.h"
#include "nn/kernels/kernels.h"
#include "nn/matrix.h"

namespace {

using namespace lighttr;

// The pre-blocking kernel, verbatim: the seed's i-k-j triple loop with
// the zero-skip. The ">= 1.5x single-thread" acceptance bar for the
// blocked kernel is measured against this.
nn::Matrix NaiveMatMul(const nn::Matrix& a, const nn::Matrix& b) {
  nn::Matrix c(a.rows(), b.cols());
  const size_t m = a.rows();
  const size_t k = a.cols();
  const size_t n = b.cols();
  for (size_t i = 0; i < m; ++i) {
    nn::Scalar* crow = c.data() + i * n;
    const nn::Scalar* arow = a.data() + i * k;
    for (size_t p = 0; p < k; ++p) {
      const nn::Scalar av = arow[p];
      if (av == nn::Scalar{0}) continue;
      const nn::Scalar* brow = b.data() + p * n;
      for (size_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
  return c;
}

double BestOfRuns(int runs, const std::function<void()>& fn) {
  double best = 0.0;
  for (int r = 0; r < runs; ++r) {
    Stopwatch watch;
    fn();
    const double elapsed = watch.ElapsedSeconds();
    if (r == 0 || elapsed < best) best = elapsed;
  }
  return best;
}

std::string JsonRow(const std::string& section, int threads, double seconds,
                    double speedup, double efficiency, double gflops) {
  char buffer[256];
  std::snprintf(buffer, sizeof(buffer),
                "  {\"section\": \"%s\", \"threads\": %d, \"seconds\": %.6f, "
                "\"speedup\": %.3f, \"efficiency\": %.3f, \"gflops\": %.3f}",
                section.c_str(), threads, seconds, speedup, efficiency,
                gflops);
  return buffer;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::ParseBenchArgs(argc, argv);
  if (args.error) return 2;
  const eval::ExperimentScale scale = eval::ExperimentScale::FromEnv();
  const std::vector<int> widths = {1, 2, 4, 8};
  std::printf("Parallel scaling sweep (scale=%s, hardware default=%d)\n",
              scale.name.c_str(), DefaultThreadCount());

  TablePrinter table({"Section", "Threads", "Seconds", "Speedup",
                      "Efficiency", "GFLOP/s"});
  std::vector<std::string> json_rows;

  // ---- Section 1: GEMM. Large enough to clear both the blocked-path
  // and the row-parallel thresholds.
  const size_t dim = 384;
  const double gemm_flops = 2.0 * static_cast<double>(dim) *
                            static_cast<double>(dim) *
                            static_cast<double>(dim);
  Rng rng(scale.seed + 11);
  const nn::Matrix a = nn::Matrix::RandomUniform(dim, dim, 1.0, &rng);
  const nn::Matrix b = nn::Matrix::RandomUniform(dim, dim, 1.0, &rng);
  const int gemm_runs = 3;

  const double naive_s =
      BestOfRuns(gemm_runs, [&] { (void)NaiveMatMul(a, b); });
  table.AddRow({"gemm-naive", "1", TablePrinter::Fmt(naive_s, 4),
                TablePrinter::Fmt(1.0, 2), TablePrinter::Fmt(1.0, 2),
                TablePrinter::Fmt(gemm_flops / naive_s / 1e9, 2)});
  json_rows.push_back(
      JsonRow("gemm-naive", 1, naive_s, 1.0, 1.0, gemm_flops / naive_s / 1e9));

  double gemm_serial_s = 0.0;
  for (int threads : widths) {
    SetGlobalThreadCount(threads);
    const double blocked_s =
        BestOfRuns(gemm_runs, [&] { (void)nn::MatMulValues(a, b); });
    if (threads == 1) gemm_serial_s = blocked_s;
    const double speedup = gemm_serial_s / blocked_s;
    table.AddRow({"gemm-blocked", std::to_string(threads),
                  TablePrinter::Fmt(blocked_s, 4),
                  TablePrinter::Fmt(speedup, 2),
                  TablePrinter::Fmt(speedup / threads, 2),
                  TablePrinter::Fmt(gemm_flops / blocked_s / 1e9, 2)});
    json_rows.push_back(JsonRow("gemm-blocked", threads, blocked_s, speedup,
                                speedup / threads,
                                gemm_flops / blocked_s / 1e9));
    std::printf("gemm-blocked threads=%d: %.4fs (naive %.4fs, kernel "
                "speedup vs naive %.2fx)\n",
                threads, blocked_s, naive_s, naive_s / blocked_s);
    std::fflush(stdout);
  }
  SetGlobalThreadCount(1);

  // ---- Section 2: federated rounds. The trainer's own pool fans the
  // per-round client loop out; the GEMMs inside each client task run
  // serially (nested-section rule), so this isolates round-level
  // scaling.
  auto env = eval::ExperimentEnv::FromScale(scale);
  const traj::WorkloadProfile profile =
      eval::ScaledProfile(traj::TdriveLikeProfile(), scale);
  const auto clients = env->MakeWorkload(
      profile, eval::DefaultWorkloadOptions(scale, 0.125), scale.seed + 5);

  double fed_serial_s = 0.0;
  double fed_reference_recall = 0.0;
  for (int threads : widths) {
    eval::MethodRunOptions options = eval::DefaultRunOptions(scale);
    options.fed.threads = threads;
    const nn::ScopedFlopCount flop_scope;
    Stopwatch watch;
    const eval::MethodResult result = eval::RunFederatedMethod(
        *env, baselines::ModelKind::kLightTr, clients, options);
    const double seconds = watch.ElapsedSeconds();
    const double run_gflops =
        static_cast<double>(flop_scope.Elapsed()) / seconds / 1e9;
    if (threads == 1) {
      fed_serial_s = seconds;
      fed_reference_recall = result.metrics.recall;
    } else if (result.metrics.recall != fed_reference_recall) {
      // Determinism is the contract; a mismatch invalidates the sweep.
      std::printf("ERROR: recall diverged at threads=%d (%.12f vs %.12f)\n",
                  threads, result.metrics.recall, fed_reference_recall);
      return 1;
    }
    const double speedup = fed_serial_s / seconds;
    table.AddRow({"fed-round", std::to_string(threads),
                  TablePrinter::Fmt(seconds, 3),
                  TablePrinter::Fmt(speedup, 2),
                  TablePrinter::Fmt(speedup / threads, 2),
                  TablePrinter::Fmt(run_gflops, 2)});
    json_rows.push_back(JsonRow("fed-round", threads, seconds, speedup,
                                speedup / threads, run_gflops));
    std::printf("fed-round threads=%d: %.3fs recall=%.4f\n", threads, seconds,
                result.metrics.recall);
    std::fflush(stdout);
  }

  std::printf("%s", table.ToString().c_str());
  std::string json = "{\"kernel\": \"";
  json += nn::KernelModeName(nn::ActiveKernelMode());
  json += "\", \"rows\": [\n";
  for (size_t i = 0; i < json_rows.size(); ++i) {
    json += json_rows[i];
    json += (i + 1 < json_rows.size()) ? ",\n" : "\n";
  }
  json += "]}\n";
  if (!bench::WriteArtifact(args, "BENCH_parallel_scaling.json", json) ||
      !bench::WriteArtifact(args, "bench_parallel_scaling.csv",
                            table.ToCsv())) {
    return 1;
  }
  return 0;
}
