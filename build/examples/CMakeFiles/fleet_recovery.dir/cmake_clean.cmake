file(REMOVE_RECURSE
  "CMakeFiles/fleet_recovery.dir/fleet_recovery.cpp.o"
  "CMakeFiles/fleet_recovery.dir/fleet_recovery.cpp.o.d"
  "fleet_recovery"
  "fleet_recovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fleet_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
