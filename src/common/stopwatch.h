// Wall-clock stopwatch for timing experiment phases.
#ifndef LIGHTTR_COMMON_STOPWATCH_H_
#define LIGHTTR_COMMON_STOPWATCH_H_

#include <chrono>

namespace lighttr {

/// Measures elapsed wall-clock time. Starts on construction.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Returns seconds elapsed since construction or the last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Returns milliseconds elapsed since construction or the last Reset().
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace lighttr

#endif  // LIGHTTR_COMMON_STOPWATCH_H_
