// Kernel dispatch + the portable scalar reference table.
//
// The scalar kernels are the pre-kernel-layer implementations moved
// here verbatim (simple loops from nn/matrix.cc and the activation
// loops from nn/ops.cc), so `--kernel=scalar` reproduces the historic
// numerics bit-for-bit.
#include "nn/kernels/kernels.h"

#include <algorithm>
#include <atomic>
#include <cmath>

#include "nn/kernels/kernel_table.h"

namespace lighttr::nn {

namespace {

using kernels::KernelTable;

// ---------------------------------------------------------------------
// Scalar reference kernels.
// ---------------------------------------------------------------------

// Block sizes: the active B panel is kBlockK x kBlockN Scalars (128 KiB)
// — sized for L2 — and each i iteration streams kBlockK a-values and a
// kBlockN-wide C row segment (2 KiB, L1-resident across the k loop).
constexpr size_t kBlockK = 64;
constexpr size_t kBlockN = 256;

// c rows [row_begin, row_end) += a * b with a [m,k], b [k,n], both
// row-major. The i-k-j loop order streams b and c rows contiguously;
// the 4-wide k unroll performs 4 fused row updates per pass over the
// C row segment. The summation tree per C element is fixed by the
// blocking, independent of how rows are distributed over threads.
void ScalarGemmRowsBlocked(const Scalar* a, const Scalar* b, Scalar* c,
                           size_t k, size_t n, size_t row_begin,
                           size_t row_end) {
  for (size_t jj = 0; jj < n; jj += kBlockN) {
    const size_t j_end = std::min(jj + kBlockN, n);
    for (size_t pp = 0; pp < k; pp += kBlockK) {
      const size_t p_end = std::min(pp + kBlockK, k);
      for (size_t i = row_begin; i < row_end; ++i) {
        const Scalar* arow = a + i * k;
        Scalar* crow = c + i * n;
        size_t p = pp;
        for (; p + 4 <= p_end; p += 4) {
          const Scalar a0 = arow[p];
          const Scalar a1 = arow[p + 1];
          const Scalar a2 = arow[p + 2];
          const Scalar a3 = arow[p + 3];
          const Scalar* b0 = b + p * n;
          const Scalar* b1 = b0 + n;
          const Scalar* b2 = b1 + n;
          const Scalar* b3 = b2 + n;
          for (size_t j = jj; j < j_end; ++j) {
            crow[j] += a0 * b0[j] + a1 * b1[j] + a2 * b2[j] + a3 * b3[j];
          }
        }
        for (; p < p_end; ++p) {
          const Scalar av = arow[p];
          const Scalar* brow = b + p * n;
          for (size_t j = jj; j < j_end; ++j) crow[j] += av * brow[j];
        }
      }
    }
  }
}

// The seed's simple i-k-j loop with the zero-skip (skipping av == 0 is
// an exact no-op on the accumulator, so the skip cannot change values).
void ScalarGemmSmallNN(const Scalar* a, const Scalar* b, Scalar* c, size_t m,
                       size_t k, size_t n, size_t ldc) {
  for (size_t i = 0; i < m; ++i) {
    Scalar* crow = c + i * ldc;
    const Scalar* arow = a + i * k;
    for (size_t p = 0; p < k; ++p) {
      const Scalar av = arow[p];
      if (av == Scalar{0}) continue;
      const Scalar* brow = b + p * n;
      for (size_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

void ScalarGemmSmallTA(const Scalar* a, const Scalar* b, Scalar* c, size_t m,
                       size_t k, size_t n) {
  for (size_t p = 0; p < k; ++p) {
    const Scalar* arow = a + p * m;
    const Scalar* brow = b + p * n;
    for (size_t i = 0; i < m; ++i) {
      const Scalar av = arow[i];
      if (av == Scalar{0}) continue;
      Scalar* crow = c + i * n;
      for (size_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

void ScalarGemmSmallTB(const Scalar* a, const Scalar* b, Scalar* c, size_t m,
                       size_t k, size_t n) {
  for (size_t i = 0; i < m; ++i) {
    const Scalar* arow = a + i * k;
    Scalar* crow = c + i * n;
    for (size_t j = 0; j < n; ++j) {
      const Scalar* brow = b + j * k;
      Scalar acc{0};
      for (size_t p = 0; p < k; ++p) acc += arow[p] * brow[p];
      crow[j] += acc;
    }
  }
}

void ScalarSigmoidInPlace(Scalar* x, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    x[i] = Scalar{1} / (Scalar{1} + std::exp(-x[i]));
  }
}

void ScalarTanhInPlace(Scalar* x, size_t n) {
  for (size_t i = 0; i < n; ++i) x[i] = std::tanh(x[i]);
}

// ---------------------------------------------------------------------
// Dispatch state. A single atomic table pointer: activation is a store,
// the hot path is one relaxed-acquire load (TSan-clean, no locks).
// ---------------------------------------------------------------------

std::atomic<const KernelTable*> g_table{nullptr};
std::atomic<int> g_mode{static_cast<int>(KernelMode::kScalar)};

const KernelTable& ActiveTable() {
  const KernelTable* table = g_table.load(std::memory_order_acquire);
  if (table == nullptr) {
    // First use without an explicit ActivateKernels: resolve kAuto.
    // A racing second thread stores the same pointer — benign.
    ActivateKernels(KernelMode::kAuto);
    table = g_table.load(std::memory_order_acquire);
  }
  return *table;
}

}  // namespace

namespace kernels {

const KernelTable& ScalarKernelTable() {
  static constexpr KernelTable kTable = {
      &ScalarGemmRowsBlocked, &ScalarGemmSmallNN, &ScalarGemmSmallTA,
      &ScalarGemmSmallTB,     &ScalarSigmoidInPlace, &ScalarTanhInPlace,
  };
  return kTable;
}

}  // namespace kernels

bool CpuHasAvx2Fma() {
#if defined(__x86_64__) || defined(__i386__)
  if (kernels::Avx2KernelTable() == nullptr) return false;
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
  return false;
#endif
}

KernelMode ResolveKernelMode(KernelMode requested, bool has_avx2_fma) {
  if (requested == KernelMode::kScalar) return KernelMode::kScalar;
  return has_avx2_fma ? KernelMode::kAvx2 : KernelMode::kScalar;
}

void ActivateKernels(KernelMode mode) {
  const KernelMode resolved = ResolveKernelMode(mode, CpuHasAvx2Fma());
  const KernelTable* table = resolved == KernelMode::kAvx2
                                 ? kernels::Avx2KernelTable()
                                 : &kernels::ScalarKernelTable();
  g_mode.store(static_cast<int>(resolved), std::memory_order_relaxed);
  g_table.store(table, std::memory_order_release);
}

KernelMode ActiveKernelMode() {
  if (g_table.load(std::memory_order_acquire) == nullptr) {
    ActivateKernels(KernelMode::kAuto);
  }
  return static_cast<KernelMode>(g_mode.load(std::memory_order_relaxed));
}

const char* KernelModeName(KernelMode mode) {
  switch (mode) {
    case KernelMode::kAuto:
      return "auto";
    case KernelMode::kScalar:
      return "scalar";
    case KernelMode::kAvx2:
      return "avx2";
  }
  return "unknown";
}

bool ParseKernelMode(const std::string& text, KernelMode* mode) {
  if (text == "auto") {
    *mode = KernelMode::kAuto;
  } else if (text == "scalar") {
    *mode = KernelMode::kScalar;
  } else if (text == "avx2") {
    *mode = KernelMode::kAvx2;
  } else {
    return false;
  }
  return true;
}

namespace kernels {

void GemmRowsBlocked(const Scalar* a, const Scalar* b, Scalar* c, size_t k,
                     size_t n, size_t row_begin, size_t row_end) {
  ActiveTable().gemm_rows_blocked(a, b, c, k, n, row_begin, row_end);
}

void GemmSmallNN(const Scalar* a, const Scalar* b, Scalar* c, size_t m,
                 size_t k, size_t n, size_t ldc) {
  ActiveTable().gemm_small_nn(a, b, c, m, k, n, ldc);
}

void GemmSmallTA(const Scalar* a, const Scalar* b, Scalar* c, size_t m,
                 size_t k, size_t n) {
  ActiveTable().gemm_small_ta(a, b, c, m, k, n);
}

void GemmSmallTB(const Scalar* a, const Scalar* b, Scalar* c, size_t m,
                 size_t k, size_t n) {
  ActiveTable().gemm_small_tb(a, b, c, m, k, n);
}

void SigmoidInPlace(Scalar* x, size_t n) { ActiveTable().sigmoid_inplace(x, n); }

void TanhInPlace(Scalar* x, size_t n) { ActiveTable().tanh_inplace(x, n); }

}  // namespace kernels

}  // namespace lighttr::nn
