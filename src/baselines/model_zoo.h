// Factory helpers that build any recovery model by kind — the five
// methods compared throughout the paper's evaluation.
#ifndef LIGHTTR_BASELINES_MODEL_ZOO_H_
#define LIGHTTR_BASELINES_MODEL_ZOO_H_

#include <string>

#include "fl/recovery_model.h"
#include "traj/encoding.h"

namespace lighttr::baselines {

/// The methods of Table IV.
enum class ModelKind {
  kFc,         // FC+FL
  kRnn,        // RNN+FL
  kMTrajRec,   // MTrajRec+FL
  kRnTrajRec,  // RNTrajRec+FL
  kLightTr,    // LightTR (LTE local model)
};

/// Display name matching the paper's tables.
std::string ModelKindName(ModelKind kind);

/// Builds a ModelFactory producing fresh replicas of the given kind with
/// the repo's default (scaled-down) configurations. `encoder` must
/// outlive every produced model.
fl::ModelFactory MakeFactory(ModelKind kind,
                             const traj::TrajectoryEncoder* encoder);

}  // namespace lighttr::baselines

#endif  // LIGHTTR_BASELINES_MODEL_ZOO_H_
