// Tests for the deterministic parallel execution substrate
// (common/thread_pool) and the thread-local FLOPs accounting it must
// compose with: every index runs exactly once at any width, exceptions
// cross the barrier, nested sections collapse to serial, and worker
// FLOPs merge exactly at the ParallelFor barrier.
#include "common/thread_pool.h"

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "nn/flops.h"

namespace lighttr {
namespace {

TEST(ThreadPoolTest, ReportsRequestedWidthAndClampsToOne) {
  ThreadPool one(1);
  EXPECT_EQ(one.threads(), 1);
  ThreadPool clamped(0);
  EXPECT_EQ(clamped.threads(), 1);
  ThreadPool negative(-3);
  EXPECT_EQ(negative.threads(), 1);
  ThreadPool eight(8);
  EXPECT_EQ(eight.threads(), 8);
}

TEST(ThreadPoolTest, CoversEveryIndexExactlyOnce) {
  for (int width : {1, 2, 8}) {
    ThreadPool pool(width);
    const size_t n = 1000;
    std::vector<std::atomic<int>> counts(n);
    pool.ParallelFor(n, [&](size_t i) {
      counts[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (size_t i = 0; i < n; ++i) {
      ASSERT_EQ(counts[i].load(), 1) << "width=" << width << " index=" << i;
    }
  }
}

TEST(ThreadPoolTest, ZeroAndSingleIterationWork) {
  ThreadPool pool(4);
  int calls = 0;
  pool.ParallelFor(0, [&](size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  // n == 1 runs inline on the caller (no handoff), so a plain int is safe.
  pool.ParallelFor(1, [&](size_t) { ++calls; });
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPoolTest, FirstExceptionPropagatesAndPoolStaysUsable) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.ParallelFor(64,
                       [&](size_t i) {
                         if (i % 7 == 3) throw std::runtime_error("boom");
                       }),
      std::runtime_error);
  // The pool must survive a throwing section and run the next one fully.
  std::atomic<int> ran{0};
  pool.ParallelFor(64, [&](size_t) { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 64);
}

TEST(ThreadPoolTest, NestedParallelForRunsInline) {
  ThreadPool pool(4);
  const size_t outer = 16;
  const size_t inner = 8;
  std::vector<std::atomic<int>> counts(outer * inner);
  pool.ParallelFor(outer, [&](size_t i) {
    // Reentrant call: must run serially on this thread, not deadlock.
    pool.ParallelFor(inner, [&](size_t j) {
      counts[i * inner + j].fetch_add(1, std::memory_order_relaxed);
    });
  });
  for (size_t i = 0; i < counts.size(); ++i) {
    ASSERT_EQ(counts[i].load(), 1) << "slot " << i;
  }
}

TEST(ThreadPoolTest, OnWorkerThreadDistinguishesCallerFromWorkers) {
  EXPECT_FALSE(ThreadPool::OnWorkerThread());
  ThreadPool pool(8);
  std::atomic<int> worker_hits{0};
  std::atomic<int> caller_hits{0};
  pool.ParallelFor(256, [&](size_t) {
    (ThreadPool::OnWorkerThread() ? worker_hits : caller_hits).fetch_add(1);
  });
  // Every index ran on either the caller or a worker; the flag never
  // leaks back onto the caller.
  EXPECT_EQ(worker_hits.load() + caller_hits.load(), 256);
  EXPECT_FALSE(ThreadPool::OnWorkerThread());
}

TEST(ThreadPoolTest, DefaultThreadCountHonorsEnvironment) {
  ASSERT_EQ(setenv("LIGHTTR_THREADS", "5", /*overwrite=*/1), 0);
  EXPECT_EQ(DefaultThreadCount(), 5);
  EXPECT_EQ(ResolveThreadCount(0), 5);
  ASSERT_EQ(setenv("LIGHTTR_THREADS", "garbage", 1), 0);
  EXPECT_GE(DefaultThreadCount(), 1);  // falls back to hardware detection
  ASSERT_EQ(unsetenv("LIGHTTR_THREADS"), 0);
  EXPECT_GE(DefaultThreadCount(), 1);
  EXPECT_EQ(ResolveThreadCount(3), 3);
  EXPECT_EQ(ResolveThreadCount(1), 1);
}

TEST(ThreadPoolTest, GlobalPoolIsResizable) {
  SetGlobalThreadCount(3);
  EXPECT_EQ(GlobalThreadPool()->threads(), 3);
  std::atomic<int> ran{0};
  GlobalThreadPool()->ParallelFor(10, [&](size_t) { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 10);
  SetGlobalThreadCount(1);
  EXPECT_EQ(GlobalThreadPool()->threads(), 1);
}

TEST(ThreadPoolTest, WorkerFlopsMergeExactlyAtTheBarrier) {
  ThreadPool pool(8);
  const nn::ScopedFlopCount scope;
  const size_t n = 100;
  pool.ParallelFor(n, [&](size_t) { nn::AddFlops(7); });
  // All worker-side AddFlops happen-before the barrier's return, so the
  // dispatching thread reads the exact total (no lost or torn counts).
  EXPECT_EQ(scope.Elapsed(), static_cast<int64_t>(7 * n));
}

TEST(ThreadPoolTest, ThreadFlopsCountsOnlyTheCallingThread) {
  const int64_t before_thread = nn::ThreadFlops();
  const int64_t before_total = nn::TotalFlops();
  nn::AddFlops(11);
  EXPECT_EQ(nn::ThreadFlops() - before_thread, 11);
  EXPECT_EQ(nn::TotalFlops() - before_total, 11);
}

}  // namespace
}  // namespace lighttr
