# Empty dependencies file for lighttr_test.
# This may be replaced when dependencies are built.
