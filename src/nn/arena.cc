#include "nn/arena.h"

#include <algorithm>
#include <new>
#include <vector>


#if defined(__SANITIZE_ADDRESS__)
#include <sanitizer/asan_interface.h>
#define LIGHTTR_ARENA_POISON(ptr, bytes) ASAN_POISON_MEMORY_REGION(ptr, bytes)
#define LIGHTTR_ARENA_UNPOISON(ptr, bytes) \
  ASAN_UNPOISON_MEMORY_REGION(ptr, bytes)
#else
#define LIGHTTR_ARENA_POISON(ptr, bytes) (void)0
#define LIGHTTR_ARENA_UNPOISON(ptr, bytes) (void)0
#endif

namespace lighttr::nn {

namespace {

// AVX2 vector width: every block can be loaded with aligned 4-double
// vectors (kernels currently use unaligned loads, so this is headroom,
// not a correctness requirement).
constexpr size_t kAlignment = 32;
// Smallest block: one AVX2 vector of Scalars.
constexpr size_t kMinElements = kAlignment / sizeof(Scalar);
// Blocks above this many elements (16 MiB) skip the freelists: shapes
// that large are one-off experiment buffers, not per-step temporaries,
// and caching them would pin memory for the process lifetime.
constexpr size_t kMaxCachedElements = size_t{1} << 21;
constexpr size_t kNumClasses = 22;  // class c holds 2^c elements, c <= 21

// Index of the smallest power-of-two class holding `n` elements.
size_t ClassIndex(size_t n) {
  size_t c = 2;  // 2^2 == kMinElements
  while ((size_t{1} << c) < n) ++c;
  return c;
}

Scalar* HeapAcquire(size_t elements) {
  return static_cast<Scalar*>(
      ::operator new(elements * sizeof(Scalar), std::align_val_t{kAlignment}));
}

void HeapRelease(Scalar* block) {
  ::operator delete(block, std::align_val_t{kAlignment});
}

// One thread's pool: LIFO freelists per power-of-two size class. LIFO
// keeps the hottest (cache-resident) block on top; plain vectors keep
// reuse order independent of block addresses.
class Arena {
 public:
  ~Arena() { Trim(); }

  Scalar* Acquire(size_t elements) {
    ++stats_.acquires;
    if (elements > kMaxCachedElements) {
      ++stats_.heap_allocations;
      return HeapAcquire(elements);
    }
    // Cacheable sizes always allocate the full class size — even under
    // bypass — so a block's footprint never depends on the bypass flag
    // at acquire time (toggling it between acquire and release must not
    // park an undersized block in a freelist).
    const size_t c = ClassIndex(std::max(elements, kMinElements));
    if (bypass_) {
      ++stats_.heap_allocations;
      return HeapAcquire(size_t{1} << c);
    }
    std::vector<Scalar*>& list = freelists_[c];
    if (!list.empty()) {
      Scalar* block = list.back();
      list.pop_back();
      ++stats_.pool_hits;
      --stats_.cached_blocks;
      stats_.cached_bytes -= static_cast<int64_t>(ClassBytes(c));
      LIGHTTR_ARENA_UNPOISON(block, ClassBytes(c));
      return block;
    }
    ++stats_.heap_allocations;
    return HeapAcquire(size_t{1} << c);
  }

  void Release(Scalar* block, size_t elements) {
    ++stats_.releases;
    if (bypass_ || elements > kMaxCachedElements) {
      HeapRelease(block);
      return;
    }
    const size_t c = ClassIndex(std::max(elements, kMinElements));
    freelists_[c].push_back(block);
    ++stats_.cached_blocks;
    stats_.cached_bytes += static_cast<int64_t>(ClassBytes(c));
    LIGHTTR_ARENA_POISON(block, ClassBytes(c));
  }

  void Trim() {
    for (size_t c = 0; c < kNumClasses; ++c) {
      for (Scalar* block : freelists_[c]) {
        LIGHTTR_ARENA_UNPOISON(block, ClassBytes(c));
        HeapRelease(block);
      }
      freelists_[c].clear();
    }
    stats_.cached_blocks = 0;
    stats_.cached_bytes = 0;
  }

  bool SetBypass(bool bypass) {
    const bool previous = bypass_;
    bypass_ = bypass;
    return previous;
  }

  const ArenaStats& stats() const { return stats_; }

 private:
  static size_t ClassBytes(size_t c) { return (size_t{1} << c) * sizeof(Scalar); }

  std::vector<Scalar*> freelists_[kNumClasses];
  ArenaStats stats_;
  bool bypass_ = false;
};

Arena& ThreadArena() {
  thread_local Arena arena;
  return arena;
}

}  // namespace

ArenaStats ThreadArenaStats() { return ThreadArena().stats(); }

void TrimThreadArena() { ThreadArena().Trim(); }

bool SetArenaBypass(bool bypass) { return ThreadArena().SetBypass(bypass); }

Scalar* AcquireArenaBlock(size_t elements) {
  return ThreadArena().Acquire(elements);
}

void ReleaseArenaBlock(Scalar* block, size_t elements) {
  ThreadArena().Release(block, elements);
}

ArenaBuffer::ArenaBuffer(size_t size) : size_(size) {
  if (size_ == 0) return;
  data_ = AcquireArenaBlock(size_);
  std::fill(data_, data_ + size_, Scalar{0});
}

ArenaBuffer::ArenaBuffer(const ArenaBuffer& other) : size_(other.size_) {
  if (size_ == 0) return;
  data_ = AcquireArenaBlock(size_);
  std::copy(other.data_, other.data_ + size_, data_);
}

ArenaBuffer::ArenaBuffer(ArenaBuffer&& other) noexcept
    : data_(other.data_), size_(other.size_) {
  other.data_ = nullptr;
  other.size_ = 0;
}

ArenaBuffer& ArenaBuffer::operator=(const ArenaBuffer& other) {
  if (this == &other) return *this;
  // Same-size assignment reuses the block in place; anything else
  // swaps through a fresh copy.
  if (size_ == other.size_) {
    if (size_ != 0) std::copy(other.data_, other.data_ + size_, data_);
    return *this;
  }
  ArenaBuffer copy(other);
  *this = std::move(copy);
  return *this;
}

ArenaBuffer& ArenaBuffer::operator=(ArenaBuffer&& other) noexcept {
  if (this == &other) return *this;
  if (data_ != nullptr) ReleaseArenaBlock(data_, size_);
  data_ = other.data_;
  size_ = other.size_;
  other.data_ = nullptr;
  other.size_ = 0;
  return *this;
}

ArenaBuffer::~ArenaBuffer() {
  if (data_ != nullptr) ReleaseArenaBlock(data_, size_);
}

}  // namespace lighttr::nn
