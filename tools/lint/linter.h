// lighttr-lint: a token-level static checker for repo invariants.
//
// The compiler already enforces type- and [[nodiscard]]-level
// contracts; this linter covers the invariants the type system cannot
// see. Source files are tokenized (tools/lint/token.h) — comments and
// string/char literals never enter the token stream — and per-file,
// determinism-family, and cross-file passes run over the tokens. The
// full rule catalogue lives in tools/lint/README.md; in brief:
//
//  substrate rules (repo-wide unless noted):
//   no-raw-rand          rand()/std::random_device/ad-hoc std engines
//                        outside common/rng.*
//   no-raw-thread        std::thread/jthread outside common/thread_pool;
//                        std::async anywhere
//   no-iostream-in-lib   std::cout/cerr/clog inside src/ outside
//                        common/table_printer.* and common/check.h
//   banned-fn            atof/strcpy/sprintf/system/... class calls
//   no-direct-persistence raw ofstream/fstream/ifstream/fopen and any
//                        std::filesystem use in src/ outside common/env
//   no-raw-nonfinite     raw isnan/isinf outside common + fl/health
//   no-raw-wire          reinterpret_cast/memcpy serialization in src/
//                        outside common/binary_io and fl/transport
//   no-raw-intrinsics    SIMD intrinsics (_mm*/__m128/__m256/__m512,
//                        *intrin.h includes) outside nn/kernels
//
//  determinism family (src/fl, src/nn, src/common — the bitwise-
//  reproducibility contract, DESIGN.md §12):
//   no-unordered-iteration  range-for / .begin() iteration over
//                           unordered containers (lookups stay legal)
//   no-wall-clock           time()/clock()/chrono clock reads outside
//                           common/stopwatch.h
//   no-pointer-keys         containers keyed on pointer values, and
//                           std::hash over pointer types
//   parallel-capture-audit  ParallelFor/submit lambdas capturing by
//                           reference without a verified
//                           `// lint: shared-state(<guard>)` annotation
//
//  cross-file passes:
//   no-ignored-status    bare statements discarding a Status/Result
//                        returned by a function declared in the input set
//   no-include-cycle     cycles in the quoted-include graph
//   unused-include       IWYU-lite: a quoted include in src/ none of
//                        whose declared names are referenced
//   unused-suppression   an allow() annotation that suppressed nothing
//
// Diagnostics carry file:line and the rule name. A violation is
// suppressed by a same-line comment `lighttr-lint: allow(<rule>)`
// (comma-separate several rules); a suppression that suppresses
// nothing is itself an error, so stale opt-outs cannot accumulate.
#ifndef LIGHTTR_TOOLS_LINT_LINTER_H_
#define LIGHTTR_TOOLS_LINT_LINTER_H_

#include <string>
#include <vector>

namespace lighttr::lint {

/// One input file: path (used for rule scoping and include-graph
/// resolution) plus its full contents.
struct SourceFile {
  std::string path;
  std::string content;
};

/// One rule violation at a source location.
struct Diagnostic {
  std::string file;
  int line = 0;  // 1-based
  std::string rule;
  std::string message;
};

/// Renders "file:line: rule: message" (the clickable compiler format).
std::string FormatDiagnostic(const Diagnostic& diagnostic);

/// Renders one JSON object {"file":...,"line":N,"rule":...,
/// "message":...} with proper string escaping (for --format=json).
std::string FormatDiagnosticJson(const Diagnostic& diagnostic);

/// Names of every rule the linter knows, e.g. for --help output and
/// per-rule hit-count reporting.
const std::vector<std::string>& AllRuleNames();

/// A parsed --baseline file: pre-existing findings to suppress so new
/// rules can land incrementally. One entry per line, `<rule> <path>`:
/// suppresses every finding of <rule> whose (normalized) file path
/// ends with <path>. `#` starts a comment; blank lines are ignored.
struct Baseline {
  struct Entry {
    std::string rule;
    std::string path_suffix;
  };
  std::vector<Entry> entries;

  bool Matches(const Diagnostic& diagnostic) const;
};

/// Parses baseline file contents (see Baseline for the format).
Baseline ParseBaseline(const std::string& content);

/// Removes diagnostics matched by `baseline`.
std::vector<Diagnostic> ApplyBaseline(std::vector<Diagnostic> diagnostics,
                                      const Baseline& baseline);

/// Runs every rule over `files` and returns the violations in file /
/// line order. Cross-file state (the Status-returning function
/// registry, the include graph, header declaration sets) is built from
/// exactly the files given, so callers should pass the whole tree they
/// care about in one call.
std::vector<Diagnostic> Lint(const std::vector<SourceFile>& files);

/// Recursively collects .h/.cc/.cpp files under each root (a root may
/// also name a single file) and runs Lint over them. Missing roots are
/// reported as a diagnostic rather than silently skipped.
std::vector<Diagnostic> LintPaths(const std::vector<std::string>& roots);

}  // namespace lighttr::lint

#endif  // LIGHTTR_TOOLS_LINT_LINTER_H_
