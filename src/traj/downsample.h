// Keep-ratio downsampling (Sec. V-A5 of the paper): a complete
// map-matched trajectory is turned into a low-sampling-rate one by
// randomly removing points at a configured keep ratio.
#ifndef LIGHTTR_TRAJ_DOWNSAMPLE_H_
#define LIGHTTR_TRAJ_DOWNSAMPLE_H_

#include "common/rng.h"
#include "traj/trajectory.h"

namespace lighttr::traj {

/// Produces an incomplete trajectory that keeps each interior point with
/// probability `keep_ratio`. The first and last points are always kept so
/// the recovery problem is interpolation (as in the paper, where six
/// points between two consecutive kept points are restored on average at
/// keep ratio 12.5%).
IncompleteTrajectory MakeIncomplete(MatchedTrajectory trajectory,
                                    double keep_ratio, Rng* rng);

/// Deterministic variant keeping every round(1/keep_ratio)-th point plus
/// both endpoints; useful in tests and the case study.
IncompleteTrajectory MakeIncompleteStrided(MatchedTrajectory trajectory,
                                           double keep_ratio);

}  // namespace lighttr::traj

#endif  // LIGHTTR_TRAJ_DOWNSAMPLE_H_
