#include "lighttr/meta_local_update.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "fl/local_trainer.h"

namespace lighttr::core {

MetaLocalUpdate::MetaLocalUpdate(fl::RecoveryModel* teacher,
                                 MetaLocalOptions options)
    : teacher_(teacher), options_(options) {
  LIGHTTR_CHECK_GE(options_.lambda0, 0.0);
}

double MetaLocalUpdate::DynamicLambda(double lambda0, double teacher_acc,
                                      double student_acc) {
  const double exponent =
      std::min(1.0, (teacher_acc - student_acc) * 5.0) - 1.0;
  return lambda0 * std::pow(10.0, exponent);
}

double MetaLocalUpdate::Update(int client_index, fl::RecoveryModel* model,
                               nn::Optimizer* optimizer,
                               const traj::ClientDataset& data, int epochs,
                               Rng* rng) {
  // Algorithm 2 line 1: start without guidance.
  double lambda = 0.0;
  double teacher_acc = 0.0;
  if (teacher_ != nullptr) {
    bool cached = false;
    {
      std::lock_guard<std::mutex> lock(cache_mutex_);
      auto it = teacher_acc_cache_.find(client_index);
      if (it != teacher_acc_cache_.end()) {
        teacher_acc = it->second;
        cached = true;
      }
    }
    if (!cached) {
      // Evaluate outside the lock; a concurrent duplicate for the same
      // client computes the identical value (frozen teacher, fixed
      // valid set), so first-emplace-wins is deterministic.
      teacher_acc = fl::EvaluateSegmentAccuracy(teacher_, data.valid);
      std::lock_guard<std::mutex> lock(cache_mutex_);
      teacher_acc_cache_.emplace(client_index, teacher_acc);
    }
  }

  double last_loss = 0.0;
  for (int epoch = 0; epoch < epochs; ++epoch) {
    fl::LocalTrainOptions local;
    local.epochs = 1;
    local.lambda = lambda;
    local.teacher = (lambda > 0.0) ? teacher_ : nullptr;
    local.clip_norm = options_.clip_norm;
    last_loss = fl::TrainLocal(model, optimizer, data.train, local, rng);

    if (teacher_ == nullptr) continue;
    // Lines 6-12: compare teacher and student on local validation data
    // and set lambda for the next epoch.
    const double student_acc =
        fl::EvaluateSegmentAccuracy(model, data.valid);
    if (teacher_acc <= student_acc) {
      lambda = 0.0;  // the teacher has nothing to offer this client
    } else {
      lambda = DynamicLambda(options_.lambda0, teacher_acc, student_acc);
    }
    // l_t guards against over-guidance: once the student itself clears
    // the threshold, guidance is reduced to zero (Sec. V-B7 observes
    // that excessive guidance degrades recovery).
    if (student_acc >= options_.l_t && teacher_acc <= student_acc) {
      lambda = 0.0;
    }
  }
  return last_loss;
}

}  // namespace lighttr::core
