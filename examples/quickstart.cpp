// Quickstart: train LightTR on a small simulated federated workload and
// recover one low-sampling-rate trajectory.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "common/table_printer.h"
#include "eval/harness.h"
#include "lighttr/pipeline.h"

int main() {
  using namespace lighttr;

  // 1. Simulated city (substitutes the Beijing road network) and the
  //    shared trajectory encoder.
  eval::ExperimentEnv env(/*rows=*/8, /*cols=*/8, /*seed=*/7);
  std::printf("city: %d vertices, %d segments\n", env.network().num_vertices(),
              env.network().num_segments());

  // 2. Decentralized workload: 4 platform centers, keep ratio 12.5%.
  traj::WorkloadProfile profile = traj::GeolifeLikeProfile();
  profile.trajectories_per_client = 10;
  traj::FederatedWorkloadOptions workload;
  workload.num_clients = 4;
  workload.keep_ratio = 0.125;
  const auto clients = env.MakeWorkload(profile, workload, /*seed=*/11);

  // 3. Train LightTR: teacher pre-training (Algorithm 1) + federated
  //    meta-knowledge enhanced training (Algorithms 2-3).
  eval::MethodRunOptions options;
  options.fed.rounds = 3;
  options.fed.local_epochs = 2;
  // Simulate an unreliable deployment: 15% of contacts drop and the
  // server retries them with backoff (see DESIGN.md "Fault model &
  // resilience").
  options.fed.faults.dropout_rate = 0.15;
  options.fed.tolerance.retry.max_retries = 2;
  const eval::MethodResult result = eval::RunFederatedMethod(
      env, baselines::ModelKind::kLightTr, clients, options);

  // 4. Report.
  TablePrinter table({"Metric", "Value"});
  table.AddRow({"Recall", TablePrinter::Fmt(result.metrics.recall)});
  table.AddRow({"Precision", TablePrinter::Fmt(result.metrics.precision)});
  table.AddRow({"MAE (km)", TablePrinter::Fmt(result.metrics.mae_km)});
  table.AddRow({"RMSE (km)", TablePrinter::Fmt(result.metrics.rmse_km)});
  table.AddRow({"Comm rounds", std::to_string(result.run.comm.rounds)});
  table.AddRow(
      {"Comm KiB", TablePrinter::Fmt(
                       static_cast<double>(result.run.comm.TotalBytes()) / 1024.0, 1)});
  table.AddRow({"Train seconds", TablePrinter::Fmt(result.wall_seconds, 2)});
  std::printf("%s", table.ToString().c_str());
  std::printf("resilience: %s\n",
              core::SummarizeResilience(result.run).c_str());
  return 0;
}
