#include "roadnet/astar.h"

#include <queue>
#include <vector>

#include "geo/geo_point.h"

namespace lighttr::roadnet {

AStarResult AStarDistance(const RoadNetwork& network, VertexId u, VertexId v) {
  LIGHTTR_CHECK(network.finalized());
  AStarResult result;
  const geo::GeoPoint target = network.vertex(v).position;
  auto heuristic = [&](VertexId x) {
    return geo::HaversineMeters(network.vertex(x).position, target);
  };

  std::vector<double> g(network.num_vertices(), kUnreachable);
  // (f = g + h, vertex) min-heap.
  using Entry = std::pair<double, VertexId>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> open;
  g[u] = 0.0;
  open.push({heuristic(u), u});
  while (!open.empty()) {
    const auto [f, x] = open.top();
    open.pop();
    if (f > g[x] + heuristic(x) + 1e-9) continue;  // stale entry
    ++result.expanded_vertices;
    if (x == v) {
      result.distance_m = g[x];
      return result;
    }
    for (SegmentId e : network.OutSegments(x)) {
      const Segment& seg = network.segment(e);
      const double ng = g[x] + seg.length_m;
      if (ng < g[seg.to]) {
        g[seg.to] = ng;
        open.push({ng + heuristic(seg.to), seg.to});
      }
    }
  }
  return result;
}

}  // namespace lighttr::roadnet
