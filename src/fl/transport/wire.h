// Wire-level message codec for the federated client/server boundary.
//
// Until now the trainer handed model updates between "client" and
// "server" as in-process structs and merely *estimated* transferred
// bytes. This module defines the real message boundary: four explicit
// request/response messages (model pull, update push, and their
// replies) encoded through common/binary_io, wrapped in a CRC32-framed,
// versioned envelope. Every decoder is hostile-input hardened — a
// truncated, bit-flipped, or length-lied frame comes back as a Status,
// never a crash or a silently-garbage message — because frames arrive
// from a simulated (or, one day, real) network that is allowed to
// damage them arbitrarily.
//
// Frame layout (all fixed-width fields host-order, the binary_io
// convention):
//
//   'L' 'T' 'R' 'F'   magic
//   u8                wire version (kWireVersion)
//   u8                FrameType
//   u32               payload length
//   bytes             payload (message-specific, see Encode*/Decode*)
//   u32               CRC-32 of everything above
//
// The CRC is the integrity boundary: any in-flight damage fails the
// check and the frame is discarded by the *receiver* — attributed to
// the network, never to the peer that sent it (see fl/reputation).
#ifndef LIGHTTR_FL_TRANSPORT_WIRE_H_
#define LIGHTTR_FL_TRANSPORT_WIRE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "fl/compression.h"

namespace lighttr::fl::transport {

/// Current (and only) wire version. Bumped on any layout change; a
/// decoder refuses frames from versions it does not speak.
inline constexpr uint8_t kWireVersion = 1;

/// Fixed per-frame overhead: magic + version + type + length + CRC.
inline constexpr int64_t kFrameOverheadBytes = 4 + 1 + 1 + 4 + 4;

/// Message kind carried by a frame.
enum class FrameType : uint8_t {
  kModelPullRequest = 1,  // client -> server: send me the global model
  kModelPullReply = 2,    // server -> client: the global model blob
  kUpdatePush = 3,        // client -> server: my local update
  kPushAck = 4,           // server -> client: push received (or duplicate)
};

const char* FrameTypeName(FrameType type);

/// A decoded frame: its type plus the raw payload bytes.
struct Frame {
  FrameType type = FrameType::kModelPullRequest;
  std::string payload;
};

/// Wraps `payload` in the framed envelope (magic, version, type,
/// length, trailing CRC-32).
std::string EncodeFrame(FrameType type, const std::string& payload);

/// Decodes one frame. Any violation — short buffer, bad magic, unknown
/// version or type, length disagreeing with the actual byte count, CRC
/// mismatch — yields a non-OK Status and leaves `out` unspecified.
[[nodiscard]] Status DecodeFrame(const std::string& bytes, Frame* out);

// ---------------------------------------------------------------------
// Messages. Every message names its round (and, where it matters, the
// sending client), so a stale or misrouted frame is rejected by the
// protocol layer even when the envelope itself is intact.

/// Client asks the server for the current global model.
struct ModelPullRequest {
  int32_t round = 0;
  int32_t client_id = 0;
};

/// Server answers a pull with the serialized global parameters (the
/// float32 ParameterSet wire blob — the same bytes every client of the
/// round receives, so the reply frame is encoded once and shared).
struct ModelPullReply {
  int32_t round = 0;
  std::string model_blob;
};

/// How an UpdatePush carries its parameters.
enum class PayloadKind : uint8_t {
  kRawF64 = 0,        // full-precision flat vector
  kQuantizedInt8 = 1, // fl/compression affine int8 blob
};

/// Client pushes its local update. `msg_id` identifies the *logical*
/// push: retransmissions reuse it, and the server dedups on it so the
/// message is idempotent (see link.h).
struct UpdatePush {
  int32_t round = 0;
  int32_t client_id = 0;
  uint64_t msg_id = 0;
  double train_loss = 0.0;
  PayloadKind kind = PayloadKind::kRawF64;
  std::vector<double> raw;   // valid when kind == kRawF64
  QuantizedBlob quantized;   // valid when kind == kQuantizedInt8
};

/// Server acknowledges an UpdatePush. `duplicate` marks a push whose
/// msg_id was already processed (the retransmission of an update whose
/// first ack got lost): the sender treats it as success, the payload is
/// not delivered twice.
struct PushAck {
  int32_t round = 0;
  int32_t client_id = 0;
  uint64_t msg_id = 0;
  bool duplicate = false;
};

// Payload codecs (the bytes inside the frame envelope). Decoders are
// hostile-input hardened like the envelope: hostile lengths and counts
// are rejected before any allocation proportional to them.

std::string EncodeModelPullRequest(const ModelPullRequest& msg);
[[nodiscard]] Status DecodeModelPullRequest(const std::string& payload,
                                            ModelPullRequest* out);

std::string EncodeModelPullReply(const ModelPullReply& msg);
[[nodiscard]] Status DecodeModelPullReply(const std::string& payload,
                                          ModelPullReply* out);

std::string EncodeUpdatePush(const UpdatePush& msg);
[[nodiscard]] Status DecodeUpdatePush(const std::string& payload,
                                      UpdatePush* out);

std::string EncodePushAck(const PushAck& msg);
[[nodiscard]] Status DecodePushAck(const std::string& payload, PushAck* out);

}  // namespace lighttr::fl::transport

#endif  // LIGHTTR_FL_TRANSPORT_WIRE_H_
