#include "traj/downsample.h"

#include <cmath>

namespace lighttr::traj {

IncompleteTrajectory MakeIncomplete(MatchedTrajectory trajectory,
                                    double keep_ratio, Rng* rng) {
  LIGHTTR_CHECK(rng != nullptr);
  LIGHTTR_CHECK_GT(keep_ratio, 0.0);
  LIGHTTR_CHECK_LE(keep_ratio, 1.0);
  const size_t n = trajectory.points.size();
  LIGHTTR_CHECK_GE(n, 2u);

  IncompleteTrajectory icp;
  icp.observed.assign(n, false);
  icp.observed.front() = true;
  icp.observed.back() = true;
  for (size_t i = 1; i + 1 < n; ++i) {
    icp.observed[i] = rng->Bernoulli(keep_ratio);
  }
  icp.ground_truth = std::move(trajectory);
  return icp;
}

IncompleteTrajectory MakeIncompleteStrided(MatchedTrajectory trajectory,
                                           double keep_ratio) {
  LIGHTTR_CHECK_GT(keep_ratio, 0.0);
  LIGHTTR_CHECK_LE(keep_ratio, 1.0);
  const size_t n = trajectory.points.size();
  LIGHTTR_CHECK_GE(n, 2u);
  const size_t stride =
      std::max<size_t>(1, static_cast<size_t>(std::llround(1.0 / keep_ratio)));

  IncompleteTrajectory icp;
  icp.observed.assign(n, false);
  for (size_t i = 0; i < n; i += stride) icp.observed[i] = true;
  icp.observed.back() = true;
  icp.ground_truth = std::move(trajectory);
  return icp;
}

}  // namespace lighttr::traj
