// Tests for tools/lint: every rule must fire on a seeded fixture with
// the right rule name and file:line, and a same-line allow() comment
// must suppress it. Fixtures live in string literals (the scanner blanks
// literals, so this file never trips the repo-wide lint run) and are
// fed both in-memory and through the filesystem entry point.
#include "lint/linter.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace lighttr::lint {
namespace {

std::vector<Diagnostic> OfRule(const std::vector<Diagnostic>& diagnostics,
                               const std::string& rule) {
  std::vector<Diagnostic> matching;
  for (const Diagnostic& d : diagnostics) {
    if (d.rule == rule) matching.push_back(d);
  }
  return matching;
}

TEST(LintTest, NoRawRandFiresAndSuppresses) {
  SourceFile file;
  file.path = "src/fl/sampler.cc";
  file.content =
      "void A() { int x = rand(); }\n"                                  // 1
      "void B() { std::mt19937 gen(7); }\n"                             // 2
      "void C() { std::random_device rd; }\n"                           // 3
      "void D() { std::mt19937 ok(7); }  // lighttr-lint: allow(no-raw-rand)\n";
  const std::vector<Diagnostic> hits = OfRule(Lint({file}), "no-raw-rand");
  ASSERT_EQ(hits.size(), 3u);
  EXPECT_EQ(hits[0].file, "src/fl/sampler.cc");
  EXPECT_EQ(hits[0].line, 1);
  EXPECT_EQ(hits[1].line, 2);
  EXPECT_EQ(hits[2].line, 3);
}

TEST(LintTest, NoRawRandExemptsCommonRng) {
  SourceFile file;
  file.path = "src/common/rng.h";
  file.content = "class Rng { std::mt19937_64 engine_; };\n";
  EXPECT_TRUE(OfRule(Lint({file}), "no-raw-rand").empty());
}

TEST(LintTest, RandInsideStringOrCommentDoesNotFire) {
  SourceFile file;
  file.path = "src/a.cc";
  file.content =
      "const char* kMsg = \"call rand() for chaos\";\n"
      "// rand() is banned here\n";
  EXPECT_TRUE(OfRule(Lint({file}), "no-raw-rand").empty());
}

TEST(LintTest, NoIgnoredStatusFiresOnBareCall) {
  SourceFile header;
  header.path = "src/io/writer.h";
  header.content = "Status WriteThing(int x);\n";
  SourceFile source;
  source.path = "src/io/user.cc";
  source.content =
      "void Use() {\n"
      "  WriteThing(1);\n"                              // 2: discarded
      "  Status s = WriteThing(2);\n"                   // consumed
      "  if (!s.ok()) return;\n"
      "  (void)WriteThing(3);  // best effort\n"        // explicit discard
      "  WriteThing(4);  // lighttr-lint: allow(no-ignored-status)\n"
      "}\n";
  const std::vector<Diagnostic> hits =
      OfRule(Lint({header, source}), "no-ignored-status");
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].file, "src/io/user.cc");
  EXPECT_EQ(hits[0].line, 2);
  EXPECT_NE(hits[0].message.find("WriteThing"), std::string::npos);
}

TEST(LintTest, NoIgnoredStatusSeesQualifiedAndResultDecls) {
  SourceFile header;
  header.path = "src/io/api.h";
  header.content =
      "lighttr::Status Push(int x);\n"
      "Result<std::vector<double>> Pull();\n";
  SourceFile source;
  source.path = "src/io/caller.cc";
  source.content = "void F() { Push(1); Pull(); }\n";
  const std::vector<Diagnostic> hits =
      OfRule(Lint({header, source}), "no-ignored-status");
  ASSERT_EQ(hits.size(), 2u);
}

TEST(LintTest, NoIostreamInLibFiresOnlyUnderSrc) {
  SourceFile lib;
  lib.path = "src/geo/debug.cc";
  lib.content = "void P() { std::cout << 1; }\n";
  SourceFile bench;
  bench.path = "bench/report.cc";
  bench.content = "void P() { std::cout << 1; }\n";
  SourceFile printer;
  printer.path = "src/common/table_printer.cc";
  printer.content = "void P() { std::cout << 1; }\n";
  const std::vector<Diagnostic> hits =
      OfRule(Lint({lib, bench, printer}), "no-iostream-in-lib");
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].file, "src/geo/debug.cc");
  EXPECT_EQ(hits[0].line, 1);
}

TEST(LintTest, BannedFnFiresAndSuppresses) {
  SourceFile file;
  file.path = "src/parse.cc";
  file.content =
      "double A(const char* s) { return atof(s); }\n"   // 1
      "int B() { return system(\"ls\"); }\n"            // 2
      "int C(const char* s) {\n"
      "  return atoi(s);  // lighttr-lint: allow(banned-fn)\n"
      "}\n"
      "void D(Obj* o) { o->system(1); }\n";             // member: allowed
  const std::vector<Diagnostic> hits = OfRule(Lint({file}), "banned-fn");
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_EQ(hits[0].line, 1);
  EXPECT_NE(hits[0].message.find("atof"), std::string::npos);
  EXPECT_EQ(hits[1].line, 2);
  EXPECT_NE(hits[1].message.find("system"), std::string::npos);
}

TEST(LintTest, NoDirectPersistenceFiresInFlAndNn) {
  SourceFile fl;
  fl.path = "src/fl/rogue.cc";
  fl.content =
      "void A() { std::ofstream out(\"x\"); }\n"        // 1
      "void B() { std::fstream io(\"x\"); }\n"          // 2
      "void C() { FILE* f = fopen(\"x\", \"wb\"); }\n"  // 3
      "void D() { std::ifstream in(\"x\"); }\n";        // read-only: allowed
  SourceFile nn;
  nn.path = "src/nn/rogue.cc";
  nn.content = "void E() { std::ofstream out(\"x\"); }\n";
  const std::vector<Diagnostic> hits =
      OfRule(Lint({fl, nn}), "no-direct-persistence");
  ASSERT_EQ(hits.size(), 4u);
  EXPECT_EQ(hits[0].file, "src/fl/rogue.cc");
  EXPECT_EQ(hits[0].line, 1);
  EXPECT_NE(hits[0].message.find("WriteFileAtomic"), std::string::npos);
  EXPECT_EQ(hits[1].line, 2);
  EXPECT_EQ(hits[2].line, 3);
  EXPECT_EQ(hits[3].file, "src/nn/rogue.cc");
}

TEST(LintTest, NoDirectPersistenceAllowComment) {
  SourceFile file;
  file.path = "src/fl/rogue.cc";
  file.content =
      "void A() {\n"
      "  std::ofstream out(\"x\");"
      "  // lighttr-lint: allow(no-direct-persistence)\n"
      "}\n";
  EXPECT_TRUE(OfRule(Lint({file}), "no-direct-persistence").empty());
}

TEST(LintTest, NoDirectPersistenceIgnoresOtherDirs) {
  const std::string body = "void A() { std::ofstream out(\"x\"); }\n";
  SourceFile common;
  common.path = "src/common/file_util.cc";
  common.content = body;
  SourceFile test_file;
  test_file.path = "tests/crash_recovery_test.cc";
  test_file.content = body;
  SourceFile tool;
  tool.path = "tools/lint/main.cc";
  tool.content = body;
  EXPECT_TRUE(OfRule(Lint({common, test_file, tool}), "no-direct-persistence")
                  .empty());
}

TEST(LintTest, BannedFnIncludesRacyTempHelpers) {
  SourceFile file;
  file.path = "src/fl/tmp.cc";
  file.content =
      "void A(char* t) { mktemp(t); }\n"
      "void B(char* t) { tmpnam(t); }\n";
  const std::vector<Diagnostic> hits = OfRule(Lint({file}), "banned-fn");
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_NE(hits[0].message.find("mktemp"), std::string::npos);
  EXPECT_NE(hits[1].message.find("tmpnam"), std::string::npos);
}

TEST(LintTest, IncludeCycleDetected) {
  SourceFile a;
  a.path = "src/x/a.h";
  a.content = "#include \"x/b.h\"\n";
  SourceFile b;
  b.path = "src/x/b.h";
  b.content = "#include \"x/a.h\"\n";
  SourceFile fine;
  fine.path = "src/x/c.h";
  fine.content = "#include \"x/a.h\"\n";
  const std::vector<Diagnostic> hits =
      OfRule(Lint({a, b, fine}), "no-include-cycle");
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_NE(hits[0].message.find("a.h"), std::string::npos);
  EXPECT_NE(hits[0].message.find("b.h"), std::string::npos);
}

TEST(LintTest, AcyclicIncludesAreClean) {
  SourceFile a;
  a.path = "src/x/a.h";
  a.content = "#include \"x/b.h\"\n#include \"x/c.h\"\n";
  SourceFile b;
  b.path = "src/x/b.h";
  b.content = "#include \"x/c.h\"\n";
  SourceFile c;
  c.path = "src/x/c.h";
  c.content = "\n";
  EXPECT_TRUE(OfRule(Lint({a, b, c}), "no-include-cycle").empty());
}

TEST(LintTest, FormatDiagnosticIsCompilerStyle) {
  Diagnostic d;
  d.file = "src/a.cc";
  d.line = 12;
  d.rule = "no-raw-rand";
  d.message = "nope";
  EXPECT_EQ(FormatDiagnostic(d), "src/a.cc:12: no-raw-rand: nope");
}

TEST(LintTest, LintPathsWalksRealFiles) {
  namespace fs = std::filesystem;
  const fs::path root = fs::path(testing::TempDir()) / "lint_fixture";
  const fs::path src = root / "src" / "m";
  fs::create_directories(src);
  {
    std::ofstream out(src / "bad.cc");
    out << "void F() { int x = rand(); }\n";
  }
  {
    std::ofstream out(src / "good.cc");
    out << "void G() {}\n";
  }
  const std::vector<Diagnostic> diagnostics =
      LintPaths({root.generic_string()});
  ASSERT_EQ(diagnostics.size(), 1u);
  EXPECT_EQ(diagnostics[0].rule, "no-raw-rand");
  EXPECT_EQ(diagnostics[0].line, 1);
  EXPECT_NE(diagnostics[0].file.find("bad.cc"), std::string::npos);
  fs::remove_all(root);
}

TEST(LintTest, LintPathsReportsMissingRoot) {
  const std::vector<Diagnostic> diagnostics =
      LintPaths({"/nonexistent/lighttr/path"});
  ASSERT_EQ(diagnostics.size(), 1u);
  EXPECT_EQ(diagnostics[0].rule, "bad-input");
}

TEST(LintTest, NoRawThreadFiresOutsideThreadPool) {
  SourceFile file;
  file.path = "src/fl/worker.cc";
  file.content =
      "void A() { std::thread t([] {}); t.join(); }\n"          // 1
      "void B() { std::jthread t([] {}); }\n"                   // 2
      "void C() { auto f = std::async([] { return 1; }); }\n";  // 3
  const std::vector<Diagnostic> hits = OfRule(Lint({file}), "no-raw-thread");
  ASSERT_EQ(hits.size(), 3u);
  EXPECT_EQ(hits[0].file, "src/fl/worker.cc");
  EXPECT_EQ(hits[0].line, 1);
  EXPECT_EQ(hits[1].line, 2);
  EXPECT_EQ(hits[2].line, 3);
}

TEST(LintTest, NoRawThreadExemptsThreadPoolButNotAsync) {
  SourceFile pool;
  pool.path = "src/common/thread_pool.cc";
  pool.content =
      "void Spawn() { std::thread t([] {}); t.detach(); }\n"    // exempt
      "void Bad() { auto f = std::async([] { return 1; }); }\n";  // not
  const std::vector<Diagnostic> hits = OfRule(Lint({pool}), "no-raw-thread");
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].line, 2);
}

TEST(LintTest, NoRawThreadAllowCommentAndNonMatches) {
  SourceFile file;
  file.path = "src/eval/harness.cc";
  file.content =
      "void A() { std::thread t; }  // lighttr-lint: allow(no-raw-thread)\n"
      "int thread = 0;   // unqualified identifier: no match\n"
      "void B() { pool->ParallelFor(4, [](size_t) {}); }\n"
      "// std::thread in a comment does not fire\n";
  EXPECT_TRUE(OfRule(Lint({file}), "no-raw-thread").empty());
}

TEST(LintTest, NoRawNonfiniteFiresOutsideCommonAndHealth) {
  SourceFile file;
  file.path = "src/traj/check.cc";
  file.content =
      "bool A(double x) { return std::isnan(x); }\n"              // 1
      "bool B(double x) { return isinf(x); }\n"                   // 2
      "bool C(double x) { return std::isfinite(x); }\n"           // isfinite ok
      "bool D(double x) { return std::isnan(x); }"
      "  // lighttr-lint: allow(no-raw-nonfinite)\n";
  const std::vector<Diagnostic> hits =
      OfRule(Lint({file}), "no-raw-nonfinite");
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_EQ(hits[0].file, "src/traj/check.cc");
  EXPECT_EQ(hits[0].line, 1);
  EXPECT_NE(hits[0].message.find("isnan"), std::string::npos);
  EXPECT_EQ(hits[1].line, 2);
  EXPECT_NE(hits[1].message.find("isinf"), std::string::npos);
}

TEST(LintTest, NoRawNonfiniteExemptsCommonAndHealth) {
  const std::string body = "bool A(double x) { return std::isnan(x); }\n";
  SourceFile finite;
  finite.path = "src/common/finite.h";
  finite.content = body;
  SourceFile health_h;
  health_h.path = "src/fl/health.h";
  health_h.content = body;
  SourceFile health_cc;
  health_cc.path = "src/fl/health.cc";
  health_cc.content = body;
  EXPECT_TRUE(OfRule(Lint({finite, health_h, health_cc}), "no-raw-nonfinite")
                  .empty());
}

TEST(LintTest, NoRawNonfiniteIgnoresMembersAndIdentifiers) {
  SourceFile file;
  file.path = "src/fl/other.cc";
  file.content =
      "void A(Obj* o) { o->isnan(1.0); }\n"       // member access: allowed
      "int my_isnan = 0;\n"                       // identifier: no call
      "bool B(double x) { return IsNan(x); }\n";  // the sanctioned wrapper
  EXPECT_TRUE(OfRule(Lint({file}), "no-raw-nonfinite").empty());
}

TEST(LintTest, NoRawWireFiresOnCastAndMemcpyInSrc) {
  SourceFile file;
  file.path = "src/fl/run_state.cc";
  file.content =
      "void A(char* p, const T& t) { std::memcpy(p, &t, sizeof(t)); }\n"  // 1
      "const T* B(const char* p) { return reinterpret_cast<const T*>(p); "
      "}\n"                                                 // 2
      "void C(char* d, const char* s) { memcpy(d, s, 4); }"  // 3, unqualified
      "\nvoid D(char* p, const T& t) { std::memcpy(p, &t, sizeof(t)); }"
      "  // lighttr-lint: allow(no-raw-wire)\n";
  const std::vector<Diagnostic> hits = OfRule(Lint({file}), "no-raw-wire");
  ASSERT_EQ(hits.size(), 3u);
  EXPECT_EQ(hits[0].line, 1);
  EXPECT_NE(hits[0].message.find("memcpy"), std::string::npos);
  EXPECT_EQ(hits[1].line, 2);
  EXPECT_NE(hits[1].message.find("reinterpret_cast"), std::string::npos);
  EXPECT_EQ(hits[2].line, 3);
}

TEST(LintTest, NoRawWireExemptsBinaryIoAndTransport) {
  const std::string body =
      "void A(char* p, const T& t) { std::memcpy(p, &t, sizeof(t)); }\n";
  SourceFile io;
  io.path = "src/common/binary_io.h";
  io.content = body;
  SourceFile wire;
  wire.path = "src/fl/transport/wire.cc";
  wire.content = body;
  SourceFile test_file;  // scope is src/ only
  test_file.path = "tests/some_test.cc";
  test_file.content = body;
  EXPECT_TRUE(
      OfRule(Lint({io, wire, test_file}), "no-raw-wire").empty());
}

TEST(LintTest, NoRawWireIgnoresMembersAndIdentifiers) {
  SourceFile file;
  file.path = "src/fl/other.cc";
  file.content =
      "void A(Obj* o) { o->memcpy(1); }\n"       // member access: allowed
      "int my_memcpy = 0;\n"                     // identifier: no call
      "bool B(const char* a, const char* b) { return memcmp(a, b, 4); }\n";
  EXPECT_TRUE(OfRule(Lint({file}), "no-raw-wire").empty());
}

TEST(LintTest, AllRuleNamesListsEveryRule) {
  const std::vector<std::string>& names = AllRuleNames();
  EXPECT_EQ(names.size(), 9u);
  EXPECT_NE(std::find(names.begin(), names.end(), "no-direct-persistence"),
            names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "no-raw-thread"),
            names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "no-raw-nonfinite"),
            names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "no-raw-wire"),
            names.end());
}

}  // namespace
}  // namespace lighttr::lint
