// Reproduces paper Figure 8: sensitivity of LightTR to the distillation
// weight lambda_0 (0.1, 1, 5, 10) and the knowledge-accumulation
// threshold l_t (0, 0.2, 0.4, 0.6), at keep ratio 12.5%.
//
// Expected shape: a sweet spot near lambda_0 = 5 and l_t = 0.4;
// excessive guidance (large lambda_0 / large l_t) degrades recovery.
#include <cstdio>

#include "bench/bench_output.h"
#include "common/table_printer.h"
#include "eval/harness.h"

int main() {
  using namespace lighttr;
  const eval::ExperimentScale scale = eval::ExperimentScale::FromEnv();
  std::printf("Figure 8 reproduction (scale=%s)\n", scale.name.c_str());

  auto env = eval::ExperimentEnv::FromScale(scale);
  const traj::WorkloadProfile profile =
      eval::ScaledProfile(traj::GeolifeLikeProfile(), scale);
  const auto clients = env->MakeWorkload(
      profile, eval::DefaultWorkloadOptions(scale, 0.125), scale.seed + 8);

  TablePrinter table({"Parameter", "Value", "Recall", "Precision", "MAE(km)",
                      "RMSE(km)"});
  auto run = [&](const std::string& parameter, double value,
                 double lambda0, double l_t) {
    eval::MethodRunOptions options = eval::DefaultRunOptions(scale);
    options.meta.lambda0 = lambda0;
    options.meta.l_t = l_t;
    options.teacher.lambda0 = lambda0;
    options.teacher.l_t = l_t;
    const eval::MethodResult result = eval::RunFederatedMethod(
        *env, baselines::ModelKind::kLightTr, clients, options);
    table.AddRow({parameter, TablePrinter::Fmt(value, 1),
                  TablePrinter::Fmt(result.metrics.recall),
                  TablePrinter::Fmt(result.metrics.precision),
                  TablePrinter::Fmt(result.metrics.mae_km),
                  TablePrinter::Fmt(result.metrics.rmse_km)});
    std::printf("done: %s=%.1f\n", parameter.c_str(), value);
    std::fflush(stdout);
  };

  for (double lambda0 : {0.1, 1.0, 5.0, 10.0}) {
    run("lambda0", lambda0, lambda0, /*l_t=*/0.4);
  }
  for (double l_t : {0.0, 0.2, 0.4, 0.6}) {
    run("l_t", l_t, /*lambda0=*/5.0, l_t);
  }
  std::printf("%s", table.ToString().c_str());
  (void)lighttr::bench::WriteArtifact(
      lighttr::bench::EnvBenchArgs(), "bench_fig8_sensitivity.csv", table.ToCsv());
  return 0;
}
