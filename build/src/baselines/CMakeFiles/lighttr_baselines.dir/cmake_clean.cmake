file(REMOVE_RECURSE
  "CMakeFiles/lighttr_baselines.dir/centralized_trainer.cc.o"
  "CMakeFiles/lighttr_baselines.dir/centralized_trainer.cc.o.d"
  "CMakeFiles/lighttr_baselines.dir/fc_model.cc.o"
  "CMakeFiles/lighttr_baselines.dir/fc_model.cc.o.d"
  "CMakeFiles/lighttr_baselines.dir/model_zoo.cc.o"
  "CMakeFiles/lighttr_baselines.dir/model_zoo.cc.o.d"
  "CMakeFiles/lighttr_baselines.dir/mt_head.cc.o"
  "CMakeFiles/lighttr_baselines.dir/mt_head.cc.o.d"
  "CMakeFiles/lighttr_baselines.dir/mtrajrec_model.cc.o"
  "CMakeFiles/lighttr_baselines.dir/mtrajrec_model.cc.o.d"
  "CMakeFiles/lighttr_baselines.dir/rnn_model.cc.o"
  "CMakeFiles/lighttr_baselines.dir/rnn_model.cc.o.d"
  "CMakeFiles/lighttr_baselines.dir/rntrajrec_model.cc.o"
  "CMakeFiles/lighttr_baselines.dir/rntrajrec_model.cc.o.d"
  "liblighttr_baselines.a"
  "liblighttr_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lighttr_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
