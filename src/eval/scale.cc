#include "eval/scale.h"

#include <cstdlib>

namespace lighttr::eval {

ExperimentScale ExperimentScale::FromEnv() {
  ExperimentScale scale;
  const char* env = std::getenv("LIGHTTR_SCALE");
  const std::string mode = env != nullptr ? env : "quick";
  if (mode == "smoke") {
    scale.name = "smoke";
    scale.grid_rows = 6;
    scale.grid_cols = 6;
    scale.num_clients = 4;
    scale.trajectories_per_client = 10;
    scale.rounds = 2;
    scale.local_epochs = 1;
    scale.teacher_cycles = 1;
    scale.centralized_epochs = 2;
    scale.max_test_trajectories = 24;
  } else if (mode == "full") {
    scale.name = "full";
    scale.grid_rows = 12;
    scale.grid_cols = 12;
    scale.num_clients = 20;
    scale.trajectories_per_client = 40;
    scale.rounds = 10;
    scale.local_epochs = 2;
    scale.teacher_cycles = 2;
    scale.centralized_epochs = 15;
    scale.max_test_trajectories = 200;
  }
  return scale;
}

}  // namespace lighttr::eval
