#include "fl/health.h"

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "common/binary_io.h"
#include "common/check.h"
#include "common/finite.h"

namespace lighttr::fl {
namespace {

// Monitor state blob: magic + version so a run_state snapshot that
// embeds it can evolve independently of the snapshot container.
constexpr uint32_t kMonitorMagic = 0x4C54484Du;  // "LTHM"
constexpr uint32_t kMonitorVersion = 1;
// A window far above any configured size; bounds hostile length fields.
constexpr uint64_t kMaxWindow = 1u << 20;

void TrimFront(std::vector<double>* window, int cap) {
  if (cap < 0) cap = 0;
  const size_t limit = static_cast<size_t>(cap);
  if (window->size() > limit) {
    window->erase(window->begin(),
                  window->end() - static_cast<std::ptrdiff_t>(limit));
  }
}

}  // namespace

const char* HealthVerdictName(HealthVerdict verdict) {
  switch (verdict) {
    case HealthVerdict::kHealthy:
      return "healthy";
    case HealthVerdict::kSuspect:
      return "suspect";
    case HealthVerdict::kDiverged:
      return "diverged";
  }
  return "unknown";
}

double Median(std::vector<double> values) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const size_t n = values.size();
  if (n % 2 == 1) return values[n / 2];
  return 0.5 * (values[n / 2 - 1] + values[n / 2]);
}

double MedianAbsDeviation(const std::vector<double>& values, double center) {
  if (values.empty()) return 0.0;
  std::vector<double> deviations;
  deviations.reserve(values.size());
  for (double v : values) deviations.push_back(std::fabs(v - center));
  return Median(std::move(deviations));
}

RoundHealthMonitor::RoundHealthMonitor(HealthMonitorConfig config)
    : config_(config) {
  LIGHTTR_CHECK_GT(config_.norm_window, 0);
  LIGHTTR_CHECK_GT(config_.loss_window, 0);
}

RoundHealthReport RoundHealthMonitor::Judge(
    std::vector<UpdateObservation>* observations,
    const std::vector<nn::Scalar>& global_params, double valid_loss) {
  LIGHTTR_CHECK(observations != nullptr);
  RoundHealthReport report;

  // (b) Norm outliers, judged against the window *before* this round is
  // admitted so one coordinated burst cannot vouch for itself.
  const bool norms_armed =
      static_cast<int>(norm_window_.size()) >= config_.min_norm_history;
  if (norms_armed) {
    report.norm_median = Median(norm_window_);
    report.norm_mad = MedianAbsDeviation(norm_window_, report.norm_median);
  }
  const double norm_spread =
      std::max(report.norm_mad,
               1e-3 * std::max(1.0, std::fabs(report.norm_median)));
  const double norm_bound =
      report.norm_median + config_.norm_outlier_mult * norm_spread;
  std::vector<double> admitted_norms;
  for (UpdateObservation& obs : *observations) {
    if (obs.corrupt) ++report.corrupt_uploads;
    if (obs.norm_rejected) ++report.rejected_uploads;
    if (obs.suspected) ++report.suspected_uploads;
    if (!obs.accepted) continue;
    if (!IsFinite(obs.delta_norm)) {
      // Should have been screened out upstream; treat as corrupt.
      obs.corrupt = true;
      obs.accepted = false;
      ++report.corrupt_uploads;
      continue;
    }
    if (norms_armed && obs.delta_norm > norm_bound) {
      obs.outlier = true;
      ++report.outlier_uploads;
      continue;  // outlier norms are not admitted to the window
    }
    // A Byzantine-aggregator suspect may have slipped under the MAD
    // envelope by construction (norm-matched poison): never let it
    // teach the very window it is trying to blend into.
    if (obs.suspected) continue;
    admitted_norms.push_back(obs.delta_norm);
  }
  for (double norm : admitted_norms) norm_window_.push_back(norm);
  TrimFront(&norm_window_, config_.norm_window);

  // (a) Non-finite scan of the post-aggregation global model: the
  // hardest divergence signal there is, independent of any history.
  report.global_nonfinite = !AllFinite(global_params);
  report.loss_nonfinite = !IsFinite(valid_loss);

  // (c) Validation-loss spike vs the rolling median + MAD envelope of
  // past non-diverged rounds.
  if (!report.loss_nonfinite &&
      static_cast<int>(loss_window_.size()) >= config_.min_loss_history) {
    report.loss_median = Median(loss_window_);
    report.loss_mad = MedianAbsDeviation(loss_window_, report.loss_median);
    const double spread =
        std::max(report.loss_mad,
                 config_.loss_mad_floor *
                     std::max(1.0, std::fabs(report.loss_median)));
    if (valid_loss > report.loss_median + config_.loss_spike_mult * spread) {
      report.loss_spike = true;
    }
  }

  if (report.global_nonfinite || report.loss_nonfinite || report.loss_spike) {
    report.verdict = HealthVerdict::kDiverged;
  } else if (report.corrupt_uploads > 0 || report.rejected_uploads > 0 ||
             report.outlier_uploads > 0 || report.suspected_uploads > 0) {
    report.verdict = HealthVerdict::kSuspect;
  } else {
    report.verdict = HealthVerdict::kHealthy;
  }

  // Only non-diverged rounds teach the loss envelope: a diverged round
  // is about to be rolled back, so its loss never happened.
  if (report.verdict != HealthVerdict::kDiverged) {
    loss_window_.push_back(valid_loss);
    TrimFront(&loss_window_, config_.loss_window);
  }
  return report;
}

std::string RoundHealthMonitor::SerializeState() const {
  BinaryWriter writer;
  writer.WriteU32(kMonitorMagic);
  writer.WriteU32(kMonitorVersion);
  writer.WriteU64(norm_window_.size());
  for (double v : norm_window_) writer.WriteF64(v);
  writer.WriteU64(loss_window_.size());
  for (double v : loss_window_) writer.WriteF64(v);
  return writer.Take();
}

Status RoundHealthMonitor::DeserializeState(const std::string& bytes) {
  BinaryReader reader(bytes);
  uint32_t magic = 0;
  uint32_t version = 0;
  LIGHTTR_RETURN_NOT_OK(reader.ReadU32(&magic));
  if (magic != kMonitorMagic) {
    return Status::InvalidArgument("health monitor blob: bad magic");
  }
  LIGHTTR_RETURN_NOT_OK(reader.ReadU32(&version));
  if (version != kMonitorVersion) {
    return Status::InvalidArgument("health monitor blob: unknown version " +
                                   std::to_string(version));
  }
  std::vector<double> norms;
  std::vector<double> losses;
  for (std::vector<double>* window : {&norms, &losses}) {
    uint64_t count = 0;
    LIGHTTR_RETURN_NOT_OK(reader.ReadU64(&count));
    if (count > kMaxWindow) {
      return Status::InvalidArgument("health monitor blob: window size " +
                                     std::to_string(count) + " exceeds cap");
    }
    window->reserve(static_cast<size_t>(count));
    for (uint64_t i = 0; i < count; ++i) {
      double v = 0.0;
      LIGHTTR_RETURN_NOT_OK(reader.ReadF64(&v));
      if (!IsFinite(v)) {
        return Status::InvalidArgument(
            "health monitor blob: non-finite window entry");
      }
      window->push_back(v);
    }
  }
  if (!reader.AtEnd()) {
    return Status::InvalidArgument("health monitor blob: trailing bytes");
  }
  norm_window_ = std::move(norms);
  loss_window_ = std::move(losses);
  return Status::Ok();
}

}  // namespace lighttr::fl
