file(REMOVE_RECURSE
  "liblighttr_nn.a"
)
