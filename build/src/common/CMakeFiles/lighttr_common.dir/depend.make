# Empty dependencies file for lighttr_common.
# This may be replaced when dependencies are built.
