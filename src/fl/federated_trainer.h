// The federated training loop (paper Algorithm 3, Fig. 2(b)):
// server-orchestrated rounds with client sampling, local updates, and
// FedAvg parameter aggregation, with exact communication accounting.
#ifndef LIGHTTR_FL_FEDERATED_TRAINER_H_
#define LIGHTTR_FL_FEDERATED_TRAINER_H_

#include <memory>
#include <vector>

#include "common/rng.h"
#include "fl/comm_stats.h"
#include "fl/compression.h"
#include "fl/local_trainer.h"
#include "fl/privacy.h"
#include "fl/recovery_model.h"
#include "nn/optimizer.h"
#include "traj/workload.h"

namespace lighttr::fl {

/// Strategy object for the client-side update of one round. The default
/// performs plain local epochs (FedAvg); LightTR substitutes its
/// meta-knowledge enhanced local training (Algorithm 2).
class LocalUpdateStrategy {
 public:
  virtual ~LocalUpdateStrategy() = default;

  /// Runs the local update for client `client_index`; returns the mean
  /// training loss.
  virtual double Update(int client_index, RecoveryModel* model,
                        nn::Optimizer* optimizer,
                        const traj::ClientDataset& data, int epochs,
                        Rng* rng) = 0;
};

/// Plain FedAvg local update: `epochs` passes of task-loss SGD.
class PlainLocalUpdate : public LocalUpdateStrategy {
 public:
  double Update(int client_index, RecoveryModel* model,
                nn::Optimizer* optimizer, const traj::ClientDataset& data,
                int epochs, Rng* rng) override;
};

/// Options for FederatedTrainer.
struct FederatedTrainerOptions {
  int rounds = 10;
  double client_fraction = 1.0;  // fraction sampled per round (Fig. 6)
  int local_epochs = 2;          // E of Algorithm 3
  double learning_rate = 1e-3;   // paper Sec. V-A4
  uint64_t seed = 7;
  /// Optional DP-style upload protection (clip + Gaussian noise).
  PrivacyConfig privacy;
  /// Quantize uploads to 8 bits per weight (4x less uplink traffic).
  bool quantize_uploads = false;
};

/// Per-round telemetry (drives the convergence analysis of Fig. 5).
struct RoundRecord {
  int round = 0;
  double mean_train_loss = 0.0;
  double global_valid_accuracy = 0.0;
  double wall_seconds = 0.0;
};

/// Outcome of a federated run.
struct FederatedRunResult {
  CommStats comm;
  std::vector<RoundRecord> history;
};

/// Simulates horizontal federated learning in-process: one global model
/// on the "server", one persistent model + optimizer per client.
class FederatedTrainer {
 public:
  FederatedTrainer(ModelFactory factory,
                   const std::vector<traj::ClientDataset>* clients,
                   FederatedTrainerOptions options);

  /// Runs `options.rounds` rounds with `strategy` (defaults to plain
  /// FedAvg when null).
  FederatedRunResult Run(LocalUpdateStrategy* strategy = nullptr);

  /// The global model (valid after construction; trained after Run).
  RecoveryModel* global_model() { return global_model_.get(); }

  /// Client models (for ablations and tests).
  RecoveryModel* client_model(int i) { return client_models_[i].get(); }
  int num_clients() const { return static_cast<int>(client_models_.size()); }

 private:
  const std::vector<traj::ClientDataset>* clients_;
  FederatedTrainerOptions options_;
  Rng rng_;
  std::unique_ptr<RecoveryModel> global_model_;
  std::vector<std::unique_ptr<RecoveryModel>> client_models_;
  std::vector<std::unique_ptr<nn::Optimizer>> client_optimizers_;
};

}  // namespace lighttr::fl

#endif  // LIGHTTR_FL_FEDERATED_TRAINER_H_
