file(REMOVE_RECURSE
  "CMakeFiles/lighttr_mapmatch.dir/greedy_map_matcher.cc.o"
  "CMakeFiles/lighttr_mapmatch.dir/greedy_map_matcher.cc.o.d"
  "CMakeFiles/lighttr_mapmatch.dir/hmm_map_matcher.cc.o"
  "CMakeFiles/lighttr_mapmatch.dir/hmm_map_matcher.cc.o.d"
  "liblighttr_mapmatch.a"
  "liblighttr_mapmatch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lighttr_mapmatch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
