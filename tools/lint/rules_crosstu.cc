// Cross-translation-unit passes. All three share the same cross-file
// state model: they are built from exactly the files handed to Lint()
// in one call, so the whole tree of interest must be linted together.
//
//   no-include-cycle   cycles in the quoted-include graph
//   no-ignored-status  bare statements discarding a Status/Result
//                      return, checked against every declaration in
//                      the input set
//   unused-include     IWYU-lite: a quoted include (src/ only) none of
//                      whose declared names the includer references
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "lint/engine.h"
#include "lint/token.h"

namespace lighttr::lint {
namespace {

// ---------------------------------------------------------------------------
// Include graph: resolve quoted includes by path-suffix match against
// the input set. Shared by no-include-cycle and unused-include.
// ---------------------------------------------------------------------------

struct IncludeEdge {
  size_t target = 0;  // index into the file vector
  int line = 0;       // line of the #include
};

std::vector<std::vector<IncludeEdge>> BuildIncludeGraph(
    const std::vector<TokenizedFile>& files) {
  std::vector<std::vector<IncludeEdge>> graph(files.size());
  for (size_t i = 0; i < files.size(); ++i) {
    const std::vector<Token>& t = files[i].tokens;
    for (size_t k = 0; k + 2 < t.size(); ++k) {
      if (!IsPunct(t, k, "#") || !t[k].preproc) continue;
      if (!IsIdent(t, k + 1, "include")) continue;
      if (t[k + 2].kind != TokenKind::kString) continue;  // <...> is system
      const std::string& target = t[k + 2].text;
      for (size_t j = 0; j < files.size(); ++j) {
        if (PathEndsWith(files[j].norm_path, target)) {
          graph[i].push_back(IncludeEdge{j, t[k + 2].line});
          break;
        }
      }
    }
  }
  return graph;
}

// ---------------------------------------------------------------------------
// Rule: no-include-cycle
// ---------------------------------------------------------------------------

void CheckIncludeCycles(Context* ctx,
                        const std::vector<std::vector<IncludeEdge>>& graph) {
  const std::vector<TokenizedFile>& files = ctx->files;
  // Iterative DFS with colors; report each back edge as one cycle.
  enum class Color { kWhite, kGray, kBlack };
  std::vector<Color> color(files.size(), Color::kWhite);
  std::set<std::pair<size_t, size_t>> reported;

  struct Frame {
    size_t node;
    size_t next_edge = 0;
  };
  for (size_t root = 0; root < files.size(); ++root) {
    if (color[root] != Color::kWhite) continue;
    std::vector<Frame> stack{Frame{root}};
    color[root] = Color::kGray;
    while (!stack.empty()) {
      Frame& frame = stack.back();
      if (frame.next_edge < graph[frame.node].size()) {
        const IncludeEdge edge = graph[frame.node][frame.next_edge++];
        if (color[edge.target] == Color::kWhite) {
          color[edge.target] = Color::kGray;
          stack.push_back(Frame{edge.target});
        } else if (color[edge.target] == Color::kGray) {
          // Found a cycle: walk the stack back to the target.
          if (reported.insert({frame.node, edge.target}).second) {
            std::string chain = files[edge.target].source->path;
            size_t k = stack.size();
            std::vector<std::string> tail;
            while (k > 0 && stack[k - 1].node != edge.target) {
              tail.push_back(files[stack[k - 1].node].source->path);
              --k;
            }
            for (auto it = tail.rbegin(); it != tail.rend(); ++it) {
              chain += " -> " + *it;
            }
            chain += " -> " + files[edge.target].source->path;
            ctx->Report(frame.node, edge.line, "no-include-cycle",
                        "include cycle: " + chain);
          }
        }
      } else {
        color[frame.node] = Color::kBlack;
        stack.pop_back();
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: no-ignored-status
//
// Pass 1 collects names of functions declared to return Status or
// Result<T> anywhere in the input set. Pass 2 flags statements that
// are a bare call to such a function: the return value never touched.
// The compiler's [[nodiscard]] already rejects most of these; the lint
// rule additionally covers code compiled without LIGHTTR_WERROR and
// fixture trees. Explicit discards spell `(void)call(...)` (not
// matched — the statement no longer begins with the callee) plus a
// rationale comment.
// ---------------------------------------------------------------------------

std::set<std::string> CollectStatusFunctions(
    const std::vector<TokenizedFile>& files) {
  std::set<std::string> names;
  for (const TokenizedFile& file : files) {
    const std::vector<Token>& t = file.tokens;
    for (size_t i = 0; i < t.size(); ++i) {
      if (t[i].kind != TokenKind::kIdent) continue;
      size_t name_at = kNpos;
      if (t[i].text == "Status" && !IsMemberAccess(t, i)) {
        name_at = i + 1;
      } else if (t[i].text == "Result" && IsPunct(t, i + 1, "<")) {
        const size_t close = MatchingDelim(t, i + 1, "<", ">");
        if (close != kNpos) name_at = close + 1;
      }
      if (name_at == kNpos || name_at >= t.size()) continue;
      if (t[name_at].kind != TokenKind::kIdent) continue;
      if (!IsPunct(t, name_at + 1, "(")) continue;
      names.insert(t[name_at].text);
    }
  }
  return names;
}

void CheckNoIgnoredStatus(Context* ctx, size_t fi,
                          const std::set<std::string>& status_fns) {
  if (status_fns.empty()) return;
  const std::vector<Token>& t = ctx->files[fi].tokens;
  // Walk statements: token runs separated by ; { } (preprocessor
  // tokens skipped). For each run ending in `;`, match a bare call
  // head: [ident [()] (:: | . | ->)]* ident ( — anchored at the start,
  // so declarations ("Status Foo(") and keyword statements
  // ("return Foo(...)") never match.
  size_t start = kNpos;  // first token of the current statement
  for (size_t i = 0; i < t.size(); ++i) {
    if (t[i].preproc) continue;
    const bool boundary = t[i].kind == TokenKind::kPunct &&
                          (t[i].text == ";" || t[i].text == "{" ||
                           t[i].text == "}");
    if (!boundary) {
      if (start == kNpos) start = i;
      continue;
    }
    if (start != kNpos && t[i].text == ";") {
      size_t head = start;
      std::string callee;
      while (head < i && t[head].kind == TokenKind::kIdent) {
        size_t next = head + 1;
        if (IsPunct(t, next, "(") && IsPunct(t, next + 1, ")")) {
          next += 2;  // zero-arg call inside a qualifier chain
        }
        if (next < i && t[next].kind == TokenKind::kPunct &&
            (t[next].text == "::" || t[next].text == "." ||
             t[next].text == "->")) {
          head = next + 1;
          continue;
        }
        if (IsPunct(t, head + 1, "(")) callee = t[head].text;
        break;
      }
      if (!callee.empty() && status_fns.count(callee) > 0) {
        ctx->Report(fi, t[start].line, "no-ignored-status",
                    "result of Status-returning call '" + callee +
                        "' is discarded; handle it, LIGHTTR_CHECK_OK it, or "
                        "discard explicitly with (void) and a rationale");
      }
    }
    start = kNpos;
  }
}

// ---------------------------------------------------------------------------
// Rule: unused-include
//
// IWYU-lite for src/: for every quoted include that resolves inside
// the input set, collect the names the target header *declares* —
// class/struct/enum names, using/typedef aliases, #define'd macros,
// capitalized function-style names, k-prefixed constants — and flag
// the include when the includer references none of them. The matching
// is deliberately conservative: a header with no collectable names is
// skipped, and a file's own header (same directory + stem) is always
// considered used. The fix is dropping the include, or including what
// is actually used directly.
// ---------------------------------------------------------------------------

bool IsDeclaredNameStyle(const std::string& id) {
  // PascalCase / ALL_CAPS (public API style) or kConstant style.
  if (id.size() >= 2 && id[0] == 'k' &&
      std::isupper(static_cast<unsigned char>(id[1]))) {
    return true;
  }
  return !id.empty() && std::isupper(static_cast<unsigned char>(id[0]));
}

std::set<std::string> CollectDeclaredNames(const TokenizedFile& file) {
  std::set<std::string> names;
  const std::vector<Token>& t = file.tokens;
  for (size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != TokenKind::kIdent) continue;
    const std::string& id = t[i].text;
    if (id == "class" || id == "struct" || id == "enum") {
      size_t j = i + 1;
      if (IsIdent(t, j, "class") || IsIdent(t, j, "struct")) ++j;
      if (j < t.size() && t[j].kind == TokenKind::kIdent) {
        names.insert(t[j].text);
      }
      continue;
    }
    if (id == "using" && i + 1 < t.size() &&
        t[i + 1].kind == TokenKind::kIdent) {
      if (IsPunct(t, i + 2, "=")) {
        names.insert(t[i + 1].text);  // using X = ...;
      } else if (!IsIdent(t, i + 1, "namespace")) {
        // using a::b::c; — the last identifier before `;`.
        std::string last;
        for (size_t j = i + 1; j < t.size() && !IsPunct(t, j, ";"); ++j) {
          if (t[j].kind == TokenKind::kIdent) last = t[j].text;
        }
        if (!last.empty()) names.insert(last);
      }
      continue;
    }
    if (id == "typedef") {
      std::string last;
      for (size_t j = i + 1; j < t.size() && !IsPunct(t, j, ";"); ++j) {
        if (t[j].kind == TokenKind::kIdent) last = t[j].text;
      }
      if (!last.empty()) names.insert(last);
      continue;
    }
    if (id == "define" && t[i].preproc && i > 0 && IsPunct(t, i - 1, "#")) {
      if (i + 1 < t.size() && t[i + 1].kind == TokenKind::kIdent) {
        names.insert(t[i + 1].text);
      }
      continue;
    }
    // Function-style and constant names in the repo's naming scheme.
    if (IsDeclaredNameStyle(id) &&
        (IsPunct(t, i + 1, "(") || IsPunct(t, i + 1, "=") ||
         IsPunct(t, i + 1, "[") || IsPunct(t, i + 1, ";") ||
         IsPunct(t, i + 1, ","))) {
      names.insert(id);
    }
  }
  return names;
}

// The includer's own header pair: same parent directory and stem.
bool IsOwnHeader(const std::string& includer, const std::string& target) {
  auto split = [](const std::string& p) {
    const size_t slash = p.find_last_of('/');
    const std::string base = slash == std::string::npos ? p
                                                        : p.substr(slash + 1);
    const size_t dot = base.find_last_of('.');
    const std::string stem = dot == std::string::npos ? base
                                                      : base.substr(0, dot);
    const std::string dir = slash == std::string::npos ? std::string()
                                                       : p.substr(0, slash);
    return std::pair<std::string, std::string>(dir, stem);
  };
  return split(includer) == split(target);
}

void CheckUnusedIncludes(Context* ctx,
                         const std::vector<std::vector<IncludeEdge>>& graph) {
  const std::vector<TokenizedFile>& files = ctx->files;
  // Lazily computed declared-name sets for include targets.
  std::vector<std::set<std::string>> declared(files.size());
  std::vector<bool> declared_ready(files.size(), false);

  for (size_t i = 0; i < files.size(); ++i) {
    if (!PathContainsDir(files[i].norm_path, "src")) continue;
    if (graph[i].empty()) continue;

    // The includer's referenced identifiers (include lines excluded:
    // the target's own filename must not count as a use).
    std::set<int> include_lines;
    for (const IncludeEdge& edge : graph[i]) include_lines.insert(edge.line);
    std::set<std::string> used;
    for (const Token& tok : files[i].tokens) {
      if (tok.kind != TokenKind::kIdent) continue;
      if (tok.preproc && include_lines.count(tok.line) > 0) continue;
      used.insert(tok.text);
    }

    for (const IncludeEdge& edge : graph[i]) {
      const TokenizedFile& target = files[edge.target];
      if (IsOwnHeader(files[i].norm_path, target.norm_path)) continue;
      if (!declared_ready[edge.target]) {
        declared[edge.target] = CollectDeclaredNames(target);
        declared_ready[edge.target] = true;
      }
      const std::set<std::string>& provides = declared[edge.target];
      if (provides.empty()) continue;  // nothing collectable: stay silent
      bool referenced = false;
      for (const std::string& name : provides) {
        if (used.count(name) > 0) {
          referenced = true;
          break;
        }
      }
      if (!referenced) {
        ctx->Report(i, edge.line, "unused-include",
                    "nothing declared in \"" + target.source->path +
                        "\" is referenced here; drop the include or include "
                        "what you use directly");
      }
    }
  }
}

}  // namespace

void RunCrossTuRules(Context* ctx) {
  const std::vector<std::vector<IncludeEdge>> graph =
      BuildIncludeGraph(ctx->files);
  CheckIncludeCycles(ctx, graph);
  const std::set<std::string> status_fns = CollectStatusFunctions(ctx->files);
  for (size_t fi = 0; fi < ctx->files.size(); ++fi) {
    CheckNoIgnoredStatus(ctx, fi, status_fns);
  }
  CheckUnusedIncludes(ctx, graph);
}

}  // namespace lighttr::lint
