// Shortest-path computation on the road network: Dijkstra single-source
// and point-to-point, route extraction, and the road-network-constrained
// distance of Eq. 20 used by the MAE/RMSE metrics.
#ifndef LIGHTTR_ROADNET_SHORTEST_PATH_H_
#define LIGHTTR_ROADNET_SHORTEST_PATH_H_

#include <limits>
#include <vector>

#include "common/status.h"
#include "roadnet/road_network.h"

namespace lighttr::roadnet {

/// Marker for unreachable vertices in distance arrays.
inline constexpr double kUnreachable = std::numeric_limits<double>::infinity();

/// Distances (meters) from `source` to every vertex (kUnreachable where no
/// directed path exists). O(E log V) Dijkstra.
std::vector<double> SingleSourceDistances(const RoadNetwork& network,
                                          VertexId source);

/// Directed shortest-path distance from vertex u to vertex v in meters,
/// with early termination. Returns kUnreachable when no path exists.
double VertexDistance(const RoadNetwork& network, VertexId u, VertexId v);

/// Shortest route from u to v as a sequence of segment ids (empty when
/// u == v). Returns NotFound when v is unreachable from u.
Result<std::vector<SegmentId>> VertexRoute(const RoadNetwork& network,
                                           VertexId u, VertexId v);

/// Directed travel distance rn_dis(a, b) in meters from network position
/// `a` to network position `b`, following segment directions.
///
/// Same segment with b.ratio >= a.ratio is the trivial along-segment case;
/// otherwise the route leaves via a's end vertex and enters b via its
/// start vertex. Returns kUnreachable when no directed route exists.
double DirectedTravelDistance(const RoadNetwork& network,
                              const PointPosition& a, const PointPosition& b);

/// Road-network-constrained distance of Eq. 20:
/// min(rn_dis(a, b), rn_dis(b, a)). Used for MAE/RMSE.
double ConstrainedDistance(const RoadNetwork& network, const PointPosition& a,
                           const PointPosition& b);

class DijkstraEngine;

/// Overloads reusing a DijkstraEngine across many queries (metric loops).
double DirectedTravelDistance(const RoadNetwork& network,
                              DijkstraEngine& engine, const PointPosition& a,
                              const PointPosition& b);
double ConstrainedDistance(const RoadNetwork& network, DijkstraEngine& engine,
                           const PointPosition& a, const PointPosition& b);

/// Reusable single-source Dijkstra engine that avoids re-allocating its
/// internal arrays across queries (hot path of the evaluation metrics).
class DijkstraEngine {
 public:
  explicit DijkstraEngine(const RoadNetwork& network);

  /// Distance from u to v with early exit; kUnreachable when disconnected.
  double Distance(VertexId u, VertexId v);

 private:
  const RoadNetwork& network_;
  std::vector<double> dist_;
  std::vector<int32_t> epoch_;  // lazy-clearing stamps
  int32_t current_epoch_ = 0;
};

}  // namespace lighttr::roadnet

#endif  // LIGHTTR_ROADNET_SHORTEST_PATH_H_
