// Dense row-major matrix — the numeric storage type of the nn library.
#ifndef LIGHTTR_NN_MATRIX_H_
#define LIGHTTR_NN_MATRIX_H_

#include <cstddef>
#include <vector>

#include "common/check.h"
#include "common/rng.h"
#include "nn/arena.h"

namespace lighttr::nn {

// `Scalar` lives in nn/arena.h (the arena sizes blocks in Scalars);
// it remains visible here for every matrix.h includer.

/// A dense (rows x cols) row-major matrix of Scalars. Storage comes
/// from the thread-local tensor arena (nn/arena.h), so the temporaries
/// of a steady-state training step recycle pooled blocks instead of
/// hitting the heap.
class Matrix {
 public:
  Matrix() = default;
  Matrix(size_t rows, size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols) {}

  static Matrix Zeros(size_t rows, size_t cols) { return Matrix(rows, cols); }

  static Matrix Full(size_t rows, size_t cols, Scalar value) {
    Matrix m(rows, cols);
    for (Scalar& x : m.data_) x = value;
    return m;
  }

  /// I.i.d. uniform entries in [-range, range].
  static Matrix RandomUniform(size_t rows, size_t cols, Scalar range,
                              Rng* rng);

  /// Xavier/Glorot uniform initialisation for a (fan_in x fan_out) weight.
  static Matrix Xavier(size_t fan_in, size_t fan_out, Rng* rng);

  /// Builds a 1 x values.size() row vector.
  static Matrix RowVector(const std::vector<Scalar>& values);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  // Per-element bounds checks are DCHECKs: this accessor sits inside every
  // matmul/op inner loop, so an always-on branch pair would dominate NDEBUG
  // throughput. Debug and default (non-NDEBUG) builds still catch misuse.
  Scalar& operator()(size_t r, size_t c) {
    LIGHTTR_DCHECK_LT(r, rows_);
    LIGHTTR_DCHECK_LT(c, cols_);
    return data_[r * cols_ + c];
  }
  Scalar operator()(size_t r, size_t c) const {
    LIGHTTR_DCHECK_LT(r, rows_);
    LIGHTTR_DCHECK_LT(c, cols_);
    return data_[r * cols_ + c];
  }

  Scalar* data() { return data_.data(); }
  const Scalar* data() const { return data_.data(); }

  void Fill(Scalar value) {
    for (Scalar& x : data_) x = value;
  }

  bool SameShape(const Matrix& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_;
  }

  /// this += other (element-wise; shapes must match).
  void AddInPlace(const Matrix& other);

  /// this += scale * other.
  void AddScaled(const Matrix& other, Scalar scale);

  /// Frobenius-norm squared.
  Scalar SquaredNorm() const;

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  ArenaBuffer data_;
};

/// c = a * b (shapes [m,k] x [k,n]).
Matrix MatMulValues(const Matrix& a, const Matrix& b);

/// c += a * b without allocating.
void MatMulAccumulate(const Matrix& a, const Matrix& b, Matrix* c);

/// c += a^T * b.
void MatMulTransAAccumulate(const Matrix& a, const Matrix& b, Matrix* c);

/// c += a * b^T.
void MatMulTransBAccumulate(const Matrix& a, const Matrix& b, Matrix* c);

}  // namespace lighttr::nn

#endif  // LIGHTTR_NN_MATRIX_H_
