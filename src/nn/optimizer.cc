#include "nn/optimizer.h"

#include <cmath>

#include "common/check.h"

namespace lighttr::nn {

void ClipGradientsByGlobalNorm(ParameterSet* params, Scalar max_norm) {
  if (max_norm <= Scalar{0}) return;
  Scalar total{0};
  for (size_t i = 0; i < params->size(); ++i) {
    total += params->tensor(i).grad().SquaredNorm();
  }
  const Scalar norm = std::sqrt(total);
  if (norm <= max_norm) return;
  const Scalar scale = max_norm / norm;
  for (size_t i = 0; i < params->size(); ++i) {
    Matrix& g = params->tensor(i).grad();
    for (size_t j = 0; j < g.size(); ++j) g.data()[j] *= scale;
  }
}

SgdOptimizer::SgdOptimizer(Scalar learning_rate, Scalar momentum,
                           Scalar clip_norm)
    : learning_rate_(learning_rate),
      momentum_(momentum),
      clip_norm_(clip_norm) {
  LIGHTTR_CHECK_GT(learning_rate, Scalar{0});
  LIGHTTR_CHECK_GE(momentum, Scalar{0});
  LIGHTTR_CHECK_LT(momentum, Scalar{1});
}

void SgdOptimizer::Step(ParameterSet* params) {
  LIGHTTR_CHECK(params != nullptr);
  ClipGradientsByGlobalNorm(params, clip_norm_);
  if (velocity_.empty() && momentum_ > Scalar{0}) {
    for (size_t i = 0; i < params->size(); ++i) {
      const Matrix& value = params->tensor(i).value();
      velocity_.emplace_back(value.rows(), value.cols());
    }
  }
  for (size_t i = 0; i < params->size(); ++i) {
    Matrix& value = params->tensor(i).mutable_value();
    const Matrix& grad = params->tensor(i).grad();
    if (momentum_ > Scalar{0}) {
      Matrix& vel = velocity_[i];
      LIGHTTR_CHECK(vel.SameShape(value));
      for (size_t j = 0; j < value.size(); ++j) {
        vel.data()[j] = momentum_ * vel.data()[j] - learning_rate_ * grad.data()[j];
        value.data()[j] += vel.data()[j];
      }
    } else {
      value.AddScaled(grad, -learning_rate_);
    }
  }
  params->ZeroGrads();
}

AdamOptimizer::AdamOptimizer(Scalar learning_rate, Scalar beta1, Scalar beta2,
                             Scalar epsilon, Scalar clip_norm,
                             Scalar weight_decay)
    : learning_rate_(learning_rate),
      beta1_(beta1),
      beta2_(beta2),
      epsilon_(epsilon),
      clip_norm_(clip_norm),
      weight_decay_(weight_decay) {
  LIGHTTR_CHECK_GT(learning_rate, Scalar{0});
  LIGHTTR_CHECK_GT(epsilon, Scalar{0});
}

void AdamOptimizer::Step(ParameterSet* params) {
  LIGHTTR_CHECK(params != nullptr);
  ClipGradientsByGlobalNorm(params, clip_norm_);
  if (m_.empty()) {
    for (size_t i = 0; i < params->size(); ++i) {
      const Matrix& value = params->tensor(i).value();
      m_.emplace_back(value.rows(), value.cols());
      v_.emplace_back(value.rows(), value.cols());
    }
  }
  LIGHTTR_CHECK_EQ(m_.size(), params->size());
  ++step_count_;
  const Scalar bc1 =
      Scalar{1} - std::pow(beta1_, static_cast<Scalar>(step_count_));
  const Scalar bc2 =
      Scalar{1} - std::pow(beta2_, static_cast<Scalar>(step_count_));
  for (size_t i = 0; i < params->size(); ++i) {
    Matrix& value = params->tensor(i).mutable_value();
    const Matrix& grad = params->tensor(i).grad();
    Matrix& m = m_[i];
    Matrix& v = v_[i];
    for (size_t j = 0; j < value.size(); ++j) {
      const Scalar g = grad.data()[j];
      m.data()[j] = beta1_ * m.data()[j] + (Scalar{1} - beta1_) * g;
      v.data()[j] = beta2_ * v.data()[j] + (Scalar{1} - beta2_) * g * g;
      const Scalar m_hat = m.data()[j] / bc1;
      const Scalar v_hat = v.data()[j] / bc2;
      value.data()[j] -= learning_rate_ * m_hat / (std::sqrt(v_hat) + epsilon_);
      if (weight_decay_ > Scalar{0}) {
        value.data()[j] -= learning_rate_ * weight_decay_ * value.data()[j];
      }
    }
  }
  params->ZeroGrads();
}

}  // namespace lighttr::nn
