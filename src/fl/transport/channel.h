// Deterministic hostile-network simulator.
//
// A SimulatedChannel models ONE direction of one client<->server link.
// Every frame handed to Transmit() runs a gauntlet of independently
// configured faults — drop, duplication, payload bit-flips, truncation,
// delay past the receiver's deadline, reordering — each decided by a
// seeded Rng stream, so a run over an arbitrarily hostile network is
// exactly reproducible from (channel seed, fault config).
//
// Determinism contract: every stochastic draw is guarded by a
// `rate > 0.0` check, so a disabled fault consumes no randomness —
// whether a per-task network Rng is forked at all depends only on the
// fault *configuration* (the same config-only-conditionality rule the
// trainer's client RNG forks follow). Each link owns its own canonically
// forked Rng and consumes it strictly sequentially, so its fault
// sequence is a pure function of (fork order, frames transmitted) and a
// lossy-channel run stays bitwise-identical at any thread count.
#ifndef LIGHTTR_FL_TRANSPORT_CHANNEL_H_
#define LIGHTTR_FL_TRANSPORT_CHANNEL_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/backoff.h"
#include "common/rng.h"

namespace lighttr::fl::transport {

/// Per-link fault rates, all independent Bernoulli probabilities applied
/// per transmitted frame (duplication/corruption/truncation/delay apply
/// per *copy* when a frame is duplicated). Rates of 0.0 consume no
/// randomness, so a clean channel is draw-free.
struct ChannelFaultConfig {
  double drop_rate = 0.0;       // frame vanishes entirely
  double duplicate_rate = 0.0;  // frame arrives twice
  double reorder_rate = 0.0;    // frame held back, released after the next
  double corrupt_rate = 0.0;    // 1..max_bit_flips random bit flips
  double truncate_rate = 0.0;   // frame cut to a random prefix
  double delay_rate = 0.0;      // arrives after the receiver's deadline
  int max_bit_flips = 8;        // upper bound on flips per corrupted copy

  /// True when any fault can fire — i.e. the channel needs an Rng.
  bool enabled() const {
    return drop_rate > 0.0 || duplicate_rate > 0.0 || reorder_rate > 0.0 ||
           corrupt_rate > 0.0 || truncate_rate > 0.0 || delay_rate > 0.0;
  }
};

/// One frame as it comes off the wire: the (possibly damaged) bytes and
/// whether it arrived past the receiver's deadline.
struct Delivery {
  std::string bytes;
  bool late = false;
};

/// One direction of one link. Owns the reorder holdback buffer; the Rng
/// is supplied per call so the owner controls stream placement.
class SimulatedChannel {
 public:
  explicit SimulatedChannel(const ChannelFaultConfig& config)
      : config_(config) {}

  /// Pushes one frame through the fault gauntlet. Returns the frames
  /// that arrive, in arrival order (a previously held-back frame is
  /// released ahead of this one's copies). `rng` may be null only when
  /// the config has every fault disabled.
  std::vector<Delivery> Transmit(const std::string& frame, Rng* rng);

  /// Releases any frame still held back by reordering (used when the
  /// sender gives up: the straggler frame eventually arrives).
  std::vector<Delivery> Flush();

 private:
  ChannelFaultConfig config_;
  std::vector<Delivery> held_;
};

/// Transport configuration for a federated run.
struct TransportConfig {
  /// When false the trainer uses the legacy in-process handoff with
  /// estimated byte accounting (kept as the bench baseline).
  bool enabled = true;

  /// Seed for the channel fault streams. Independent of the training
  /// seed: changing the network's weather must not perturb model init,
  /// client sampling, or local training draws.
  uint64_t channel_seed = 0x5EEDC0DEull;

  /// Fault model applied to every link without an override.
  ChannelFaultConfig channel;

  /// Per-client overrides (e.g. a 100%-loss link on a minority of
  /// clients for quorum tests). First match wins.
  std::vector<std::pair<int, ChannelFaultConfig>> link_overrides;

  /// Retry schedule for ReliableLink: per-exchange attempts beyond the
  /// first, with simulated exponential backoff.
  BackoffConfig retry{/*max_retries=*/3, /*base_delay_s=*/0.05,
                      /*multiplier=*/2.0, /*max_delay_s=*/1.0,
                      /*jitter=*/0.1};

  const ChannelFaultConfig& LinkConfig(int client_id) const {
    for (const auto& [id, config] : link_overrides) {
      if (id == client_id) return config;
    }
    return channel;
  }

  /// True when any link can fault (decides whether per-task network
  /// Rngs are forked — config-only conditionality, like FaultModel).
  bool faulty() const {
    if (channel.enabled()) return true;
    for (const auto& [id, config] : link_overrides) {
      (void)id;
      if (config.enabled()) return true;
    }
    return false;
  }
};

}  // namespace lighttr::fl::transport

#endif  // LIGHTTR_FL_TRANSPORT_CHANNEL_H_
