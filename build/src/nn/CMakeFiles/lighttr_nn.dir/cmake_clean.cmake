file(REMOVE_RECURSE
  "CMakeFiles/lighttr_nn.dir/checkpoint.cc.o"
  "CMakeFiles/lighttr_nn.dir/checkpoint.cc.o.d"
  "CMakeFiles/lighttr_nn.dir/flops.cc.o"
  "CMakeFiles/lighttr_nn.dir/flops.cc.o.d"
  "CMakeFiles/lighttr_nn.dir/layers.cc.o"
  "CMakeFiles/lighttr_nn.dir/layers.cc.o.d"
  "CMakeFiles/lighttr_nn.dir/losses.cc.o"
  "CMakeFiles/lighttr_nn.dir/losses.cc.o.d"
  "CMakeFiles/lighttr_nn.dir/matrix.cc.o"
  "CMakeFiles/lighttr_nn.dir/matrix.cc.o.d"
  "CMakeFiles/lighttr_nn.dir/ops.cc.o"
  "CMakeFiles/lighttr_nn.dir/ops.cc.o.d"
  "CMakeFiles/lighttr_nn.dir/optimizer.cc.o"
  "CMakeFiles/lighttr_nn.dir/optimizer.cc.o.d"
  "CMakeFiles/lighttr_nn.dir/parameter.cc.o"
  "CMakeFiles/lighttr_nn.dir/parameter.cc.o.d"
  "CMakeFiles/lighttr_nn.dir/tensor.cc.o"
  "CMakeFiles/lighttr_nn.dir/tensor.cc.o.d"
  "liblighttr_nn.a"
  "liblighttr_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lighttr_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
