// End-to-end smoke: build a tiny city, generate a federated workload,
// train LightTR for a couple of rounds, and check the metrics pipeline
// produces sane numbers.
#include <gtest/gtest.h>

#include "eval/harness.h"

namespace lighttr {
namespace {

TEST(Smoke, LightTrEndToEnd) {
  eval::ExperimentEnv env(6, 6, /*seed=*/1);
  traj::WorkloadProfile profile = traj::TdriveLikeProfile();
  profile.trajectories_per_client = 8;
  traj::FederatedWorkloadOptions workload;
  workload.num_clients = 3;
  workload.keep_ratio = 0.25;
  const auto clients = env.MakeWorkload(profile, workload, /*seed=*/2);
  ASSERT_EQ(clients.size(), 3u);

  eval::MethodRunOptions options;
  options.fed.rounds = 2;
  options.fed.local_epochs = 1;
  options.teacher.cycles = 1;
  options.max_test_trajectories = 10;
  const eval::MethodResult result = eval::RunFederatedMethod(
      env, baselines::ModelKind::kLightTr, clients, options);

  EXPECT_GT(result.metrics.recovered_points, 0);
  EXPECT_GE(result.metrics.recall, 0.0);
  EXPECT_LE(result.metrics.recall, 1.0);
  EXPECT_GE(result.metrics.precision, 0.0);
  EXPECT_LE(result.metrics.precision, 1.0);
  EXPECT_GE(result.metrics.mae_km, 0.0);
  EXPECT_GE(result.metrics.rmse_km, result.metrics.mae_km);
  EXPECT_EQ(result.run.comm.rounds, 2);
  EXPECT_GT(result.run.comm.TotalBytes(), 0);
}

}  // namespace
}  // namespace lighttr
