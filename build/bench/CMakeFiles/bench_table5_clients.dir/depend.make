# Empty dependencies file for bench_table5_clients.
# This may be replaced when dependencies are built.
