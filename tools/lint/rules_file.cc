// Per-file substrate rules, ported from the original per-line regex
// scans onto the token stream. Matching identifiers (never literal or
// comment text) is what retired the regex engine's false-positive
// class: a banned name inside a string, raw string, comment, or a
// string on a preprocessor line can no longer fire.
#include <string>
#include <vector>

#include "lint/engine.h"
#include "lint/token.h"

namespace lighttr::lint {
namespace {

// ---------------------------------------------------------------------------
// Rule: no-raw-rand
// ---------------------------------------------------------------------------

void CheckNoRawRand(Context* ctx, size_t fi) {
  const TokenizedFile& file = ctx->files[fi];
  const std::string& path = file.norm_path;
  if (PathEndsWith(path, "common/rng.h") ||
      PathEndsWith(path, "common/rng.cc")) {
    return;  // the one sanctioned home of raw engines
  }
  const std::vector<Token>& t = file.tokens;
  for (size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != TokenKind::kIdent) continue;
    const std::string& id = t[i].text;
    if (id == "rand" && IsFreeOrStdCall(t, i)) {
      ctx->Report(fi, t[i].line, "no-raw-rand",
                  "call to rand(); draw from a seeded lighttr::Rng instead");
    } else if (id == "random_device" && IsStdQualified(t, i)) {
      ctx->Report(fi, t[i].line, "no-raw-rand",
                  "std::random_device is nondeterministic; seed a "
                  "lighttr::Rng explicitly");
    } else if ((id == "mt19937" || id == "mt19937_64" ||
                id == "minstd_rand" || id == "minstd_rand0" ||
                id == "default_random_engine") &&
               IsStdQualified(t, i)) {
      ctx->Report(fi, t[i].line, "no-raw-rand",
                  "ad-hoc std engine construction; all randomness must flow "
                  "through common/rng");
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: no-raw-thread
//
// common/thread_pool is the only sanctioned home of raw std::thread:
// every other concurrency use must go through ThreadPool::ParallelFor,
// whose canonical-order fork/merge discipline is what keeps results
// bitwise identical across thread counts (and keeps the TSan matrix
// meaningful). std::async is banned everywhere — its deferred/eager
// launch policy is scheduler-dependent.
// ---------------------------------------------------------------------------

void CheckNoRawThread(Context* ctx, size_t fi) {
  const TokenizedFile& file = ctx->files[fi];
  const bool in_pool = PathEndsWith(file.norm_path, "common/thread_pool.h") ||
                       PathEndsWith(file.norm_path, "common/thread_pool.cc");
  const std::vector<Token>& t = file.tokens;
  for (size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != TokenKind::kIdent || !IsStdQualified(t, i)) continue;
    const std::string& id = t[i].text;
    if (!in_pool && (id == "thread" || id == "jthread")) {
      ctx->Report(fi, t[i].line, "no-raw-thread",
                  "std::" + id +
                      " outside common/thread_pool; run the work through "
                      "ThreadPool::ParallelFor so determinism and TSan "
                      "coverage hold");
    }
    if (id == "async" && IsPunct(t, i + 1, "(")) {
      ctx->Report(fi, t[i].line, "no-raw-thread",
                  "std::async has scheduler-dependent launch semantics; use "
                  "ThreadPool::ParallelFor");
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: no-iostream-in-lib
// ---------------------------------------------------------------------------

void CheckNoIostreamInLib(Context* ctx, size_t fi) {
  const TokenizedFile& file = ctx->files[fi];
  const std::string& path = file.norm_path;
  if (!PathContainsDir(path, "src")) return;  // tests/bench/tools may print
  if (PathEndsWith(path, "common/table_printer.h") ||
      PathEndsWith(path, "common/table_printer.cc") ||
      PathEndsWith(path, "common/check.h")) {
    return;
  }
  const std::vector<Token>& t = file.tokens;
  for (size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != TokenKind::kIdent || !IsStdQualified(t, i)) continue;
    const std::string& id = t[i].text;
    if (id == "cout" || id == "cerr" || id == "clog") {
      ctx->Report(fi, t[i].line, "no-iostream-in-lib",
                  "std::" + id +
                      " in library code; route output through "
                      "common/table_printer or return data to the caller");
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: banned-fn
// ---------------------------------------------------------------------------

struct BannedFn {
  const char* name;
  const char* reason;
};

constexpr BannedFn kBannedFns[] = {
    {"atof", "silently returns 0.0 on garbage; use std::strtod or std::stod"},
    {"atoi", "silently returns 0 on garbage; use std::strtol or std::stoi"},
    {"atol", "silently returns 0 on garbage; use std::strtol"},
    {"strcpy", "unbounded copy; use std::string or std::snprintf"},
    {"strcat", "unbounded append; use std::string"},
    {"sprintf", "unbounded format; use std::snprintf"},
    {"vsprintf", "unbounded format; use std::vsnprintf"},
    {"gets", "unbounded read; use std::getline"},
    {"system", "shells out with inherited environment; spawn explicitly or "
               "restructure"},
    {"tmpnam", "racy temp naming; derive paths from a seed or PID instead"},
    {"mktemp", "racy temp naming; use WriteFileAtomic (common/file_util), "
               "which owns its temp-file lifecycle"},
};

void CheckBannedFn(Context* ctx, size_t fi) {
  const TokenizedFile& file = ctx->files[fi];
  const std::vector<Token>& t = file.tokens;
  for (size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != TokenKind::kIdent || !IsFreeOrStdCall(t, i)) continue;
    for (const BannedFn& banned : kBannedFns) {
      if (t[i].text == banned.name) {
        ctx->Report(fi, t[i].line, "banned-fn",
                    std::string(banned.name) + ": " + banned.reason);
        break;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: no-direct-persistence
//
// common/env is the single place src/ may touch raw file APIs: its
// FileSystem interface is what makes every persisted byte atomic (or
// CRC-tagged append) AND fault-injectable by the chaos engine.
// Everywhere else under src/, raw streams (std::ofstream/fstream/
// ifstream, fopen) and std::filesystem calls — mutation (rename,
// remove, create_directories, ...) and inspection (directory_iterator,
// exists, ...) alike, including `namespace fs = std::filesystem`
// aliases — tear files on crash and silently bypass both the
// durability contract and storage fault injection.
// ---------------------------------------------------------------------------

void CheckNoDirectPersistence(Context* ctx, size_t fi) {
  const TokenizedFile& file = ctx->files[fi];
  const std::string& path = file.norm_path;
  if (!PathContainsDir(path, "src")) return;
  if (PathEndsWith(path, "common/env.h") ||
      PathEndsWith(path, "common/env.cc")) {
    return;  // the one sanctioned home of raw file APIs
  }
  const std::vector<Token>& t = file.tokens;
  for (size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != TokenKind::kIdent) continue;
    const std::string& id = t[i].text;
    if ((id == "ofstream" || id == "fstream" || id == "ifstream") &&
        IsStdQualified(t, i)) {
      ctx->Report(fi, t[i].line, "no-direct-persistence",
                  "std::" + id +
                      " in src/ outside common/env; do file IO through a "
                      "FileSystem (WriteFileAtomic / AppendToFile / "
                      "ReadFile) so it stays crash-atomic and "
                      "fault-injectable");
    } else if (id == "fopen" && IsFreeOrStdCall(t, i)) {
      ctx->Report(fi, t[i].line, "no-direct-persistence",
                  "fopen in src/ outside common/env; do file IO through a "
                  "FileSystem (WriteFileAtomic / AppendToFile / ReadFile) "
                  "so it stays crash-atomic and fault-injectable");
    } else if (id == "filesystem" && IsStdQualified(t, i)) {
      ctx->Report(fi, t[i].line, "no-direct-persistence",
                  "std::filesystem in src/ outside common/env (aliases "
                  "included); route directory and file operations through "
                  "a FileSystem (CreateDirs / ListDir / Remove / Exists)");
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: no-raw-nonfinite
//
// Raw std::isnan / std::isinf calls scattered through the tree made the
// self-healing work inconsistent: some sites forgot the Inf half,
// others broke under -ffast-math assumptions. common/finite.h (IsNan /
// IsInf / IsFinite / ScanFinite) is the one sanctioned wrapper;
// src/fl/health is the classifier built on top of it. std::isfinite
// stays legal — the wrappers are for the two easy-to-misuse predicates.
// ---------------------------------------------------------------------------

void CheckNoRawNonfinite(Context* ctx, size_t fi) {
  const TokenizedFile& file = ctx->files[fi];
  const std::string& path = file.norm_path;
  if (PathContainsDir(path, "src/common") ||
      PathEndsWith(path, "fl/health.h") || PathEndsWith(path, "fl/health.cc")) {
    return;  // the wrappers themselves, and the classifier built on them
  }
  const std::vector<Token>& t = file.tokens;
  for (size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != TokenKind::kIdent || !IsFreeOrStdCall(t, i)) continue;
    const std::string& id = t[i].text;
    if (id == "isnan" || id == "isinf") {
      ctx->Report(fi, t[i].line, "no-raw-nonfinite",
                  id +
                      " outside common/finite; use lighttr::IsNan/IsInf (or "
                      "ScanFinite) so non-finite handling stays uniform");
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: no-raw-wire
//
// reinterpret_cast / memcpy struct (de)serialization scattered through
// the tree is how silent layout drift and unchecked-bounds decode bugs
// happen. common/binary_io is the one sanctioned place bytes are
// reinterpreted (bounds-checked, length-capped); fl/transport builds
// the framed wire protocol on top of it. Everywhere else in src/,
// serialization must flow through BinaryWriter/BinaryReader, and CRC
// trailers through common/crc32's Append/CheckCrc32Trailer.
// ---------------------------------------------------------------------------

void CheckNoRawWire(Context* ctx, size_t fi) {
  const TokenizedFile& file = ctx->files[fi];
  const std::string& path = file.norm_path;
  if (!PathContainsDir(path, "src")) return;  // tests may craft hostile bytes
  if (PathEndsWith(path, "common/binary_io.h") ||
      PathContainsDir(path, "fl/transport")) {
    return;
  }
  const std::vector<Token>& t = file.tokens;
  for (size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != TokenKind::kIdent) continue;
    if (t[i].text == "reinterpret_cast" && IsPunct(t, i + 1, "<")) {
      ctx->Report(fi, t[i].line, "no-raw-wire",
                  "reinterpret_cast in library code; (de)serialize through "
                  "common/binary_io (BinaryWriter/BinaryReader) instead of "
                  "reinterpreting struct bytes");
    } else if (t[i].text == "memcpy" && IsFreeOrStdCall(t, i)) {
      ctx->Report(fi, t[i].line, "no-raw-wire",
                  "memcpy-based serialization outside common/binary_io and "
                  "fl/transport; use BinaryWriter/BinaryReader (or std::copy "
                  "for typed buffers)");
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: no-raw-intrinsics
//
// SIMD intrinsics scattered through the tree defeat the kernel
// architecture: every vector loop would need its own CPUID guard, its
// own scalar fallback, and its own determinism argument. nn/kernels is
// the one sanctioned home — it compiles the vector TU with the ISA
// flags, publishes a runtime-dispatched function table, and pairs every
// vector kernel with the scalar reference that bounds its rounding
// drift. Everywhere else, reach vector code through that table.
// ---------------------------------------------------------------------------

bool IsIntrinsicIdent(const std::string& text) {
  // _mm_*, _mm256_*, _mm512_* operations and the __m128/__m256/__m512
  // vector types (plus suffixed forms like __m256d).
  if (text.rfind("_mm", 0) == 0) return true;
  return text.rfind("__m128", 0) == 0 || text.rfind("__m256", 0) == 0 ||
         text.rfind("__m512", 0) == 0;
}

// immintrin, x86intrin, emmintrin, avx2intrin, ... — every x86
// intrinsics header ends in "intrin". Angle includes tokenize as bare
// idents on the preproc line; quoted includes arrive as one string.
bool IsIntrinsicHeaderName(const std::string& text) {
  const std::string suffix = "intrin";
  if (text.size() < suffix.size()) return false;
  return text.compare(text.size() - suffix.size(), suffix.size(), suffix) ==
         0;
}

void CheckNoRawIntrinsics(Context* ctx, size_t fi) {
  const TokenizedFile& file = ctx->files[fi];
  const std::string& path = file.norm_path;
  if (PathContainsDir(path, "nn/kernels")) return;
  const std::vector<Token>& t = file.tokens;
  for (size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind == TokenKind::kIdent && IsIntrinsicIdent(t[i].text)) {
      ctx->Report(fi, t[i].line, "no-raw-intrinsics",
                  "SIMD intrinsic '" + t[i].text +
                      "' outside nn/kernels; add a kernel to the dispatch "
                      "table (nn/kernels/kernel_table.h) instead");
    } else if (t[i].preproc &&
               ((t[i].kind == TokenKind::kIdent &&
                 IsIntrinsicHeaderName(t[i].text)) ||
                (t[i].kind == TokenKind::kString &&
                 t[i].text.size() >= 8 &&
                 t[i].text.compare(t[i].text.size() - 8, 8, "intrin.h") ==
                     0))) {
      ctx->Report(fi, t[i].line, "no-raw-intrinsics",
                  "intrinsics header include outside nn/kernels; vector "
                  "code belongs behind the kernel dispatch table");
    }
  }
}

}  // namespace

void RunFileRules(Context* ctx) {
  for (size_t fi = 0; fi < ctx->files.size(); ++fi) {
    CheckNoRawRand(ctx, fi);
    CheckNoRawThread(ctx, fi);
    CheckNoIostreamInLib(ctx, fi);
    CheckBannedFn(ctx, fi);
    CheckNoDirectPersistence(ctx, fi);
    CheckNoRawNonfinite(ctx, fi);
    CheckNoRawWire(ctx, fi);
    CheckNoRawIntrinsics(ctx, fi);
  }
}

}  // namespace lighttr::lint
