// Recovery-under-poisoning sweep for the self-healing layer: the same
// federated LightTR run with a hostile minority of clients uploading
// huge-but-finite weights, with the round health monitor off vs on.
//
// Expected shape: with --health off the poisoned mean drags the global
// model into a blown-up validation loss; with the monitor on the first
// poisoned round is detected as diverged, rolled back, replayed under
// escalated screening (median aggregation), and the offenders end up
// quarantined — the run finishes with a finite model and a validation
// loss close to the clean baseline. A second, clean section measures
// the monitor's overhead when nothing goes wrong (results must be
// bitwise identical with the layer on or off).
//
// Emits a human table plus BENCH_self_healing.json, and exits non-zero
// if the healing layer fails to beat the unprotected run.
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "baselines/model_zoo.h"
#include "bench/bench_output.h"
#include "common/stopwatch.h"
#include "common/table_printer.h"
#include "eval/harness.h"
#include "fl/federated_trainer.h"
#include "nn/parameter.h"

namespace {

using namespace lighttr;

// Poisons a fixed set of clients: each behaves for `clean_updates`
// local rounds, then uploads a constant huge-but-finite weight vector.
// Finite poison slips past the non-finite screen and (under mean
// aggregation with screening off) drags the global model — the exact
// failure mode the health monitor exists to catch. Per-client counters
// keep the schedule identical at any thread width.
class PoisonedUpdate : public fl::LocalUpdateStrategy {
 public:
  PoisonedUpdate(int num_clients, int num_hostile, int clean_updates)
      : updates_(num_clients, 0),
        num_hostile_(num_hostile),
        clean_updates_(clean_updates) {}

  double Update(int client_index, fl::RecoveryModel* model,
                nn::Optimizer* optimizer, const traj::ClientDataset& data,
                int epochs, Rng* rng) override {
    const double loss =
        plain_.Update(client_index, model, optimizer, data, epochs, rng);
    if (client_index < num_hostile_ &&
        ++updates_[static_cast<size_t>(client_index)] > clean_updates_) {
      model->params().AssignFlat(std::vector<nn::Scalar>(
          model->params().Flatten().size(), nn::Scalar{1e6}));
    }
    return loss;
  }

 private:
  fl::PlainLocalUpdate plain_;
  std::vector<int> updates_;
  int num_hostile_;
  int clean_updates_;
};

// Keeps the emitted JSON valid when the unprotected run blows its
// validation loss up to infinity.
double JsonSafe(double v) { return std::isfinite(v) ? v : 9.9e307; }

std::string JsonRow(const std::string& section, bool health, double seconds,
                    double valid_loss, double recall, const fl::FaultStats& f,
                    bool finite, bool gave_up) {
  char buffer[384];
  std::snprintf(
      buffer, sizeof(buffer),
      "  {\"section\": \"%s\", \"health\": %d, \"seconds\": %.3f, "
      "\"valid_loss\": %.6g, \"recall\": %.4f, \"diverged\": %lld, "
      "\"rollbacks\": %lld, \"quarantine\": %lld, \"parole\": %lld, "
      "\"outliers\": %lld, \"finite\": %d, \"gave_up\": %d}",
      section.c_str(), health ? 1 : 0, seconds, JsonSafe(valid_loss), recall,
      static_cast<long long>(f.diverged_rounds),
      static_cast<long long>(f.rollbacks),
      static_cast<long long>(f.quarantine_events),
      static_cast<long long>(f.parole_events),
      static_cast<long long>(f.outlier_uploads), finite ? 1 : 0,
      gave_up ? 1 : 0);
  return buffer;
}

struct RunOutcome {
  fl::FederatedRunResult run;
  double valid_loss = 0.0;
  double recall = 0.0;
  double seconds = 0.0;
  bool finite = false;
};

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::ParseBenchArgs(argc, argv);
  if (args.error) return 2;
  const eval::ExperimentScale scale = eval::ExperimentScale::FromEnv();
  std::printf("Self-healing sweep (scale=%s)\n", scale.name.c_str());

  auto env = eval::ExperimentEnv::FromScale(scale);
  const traj::WorkloadProfile profile =
      eval::ScaledProfile(traj::TdriveLikeProfile(), scale);
  const auto clients = env->MakeWorkload(
      profile, eval::DefaultWorkloadOptions(scale, 0.125), scale.seed + 7);
  const std::vector<traj::IncompleteTrajectory> test =
      eval::ExperimentEnv::PooledTestSet(clients, scale.max_test_trajectories);

  // Enough rounds for the loss window to arm (3), the poison to land,
  // and the replayed tail to recover.
  const int rounds = std::max(scale.rounds, 12);
  const int num_hostile = std::max(1, static_cast<int>(clients.size()) / 4);
  const int clean_updates = 4;

  const auto fed_options = [&](bool health) {
    eval::MethodRunOptions base = eval::DefaultRunOptions(scale);
    fl::FederatedTrainerOptions options = base.fed;
    options.rounds = rounds;
    // Screening stays off so the poison reaches the aggregator — turning
    // it back on (escalation) is the healing layer's own countermove.
    options.tolerance.screen.enabled = false;
    options.healing.enabled = health;
    // Below the outlier EWMA's asymptote (0.5), so a repeat norm
    // offender is quarantined after a few flagged rounds.
    options.healing.reputation.quarantine_threshold = 0.4;
    return options;
  };

  const auto run_once = [&](bool health, bool poisoned) {
    fl::FederatedTrainer trainer(
        baselines::MakeFactory(baselines::ModelKind::kLightTr, &env->encoder()),
        &clients, fed_options(health));
    PoisonedUpdate hostile(static_cast<int>(clients.size()), num_hostile,
                           clean_updates);
    Stopwatch watch;
    RunOutcome outcome;
    outcome.run = trainer.Run(poisoned ? &hostile : nullptr);
    outcome.seconds = watch.ElapsedSeconds();
    outcome.valid_loss = outcome.run.history.empty()
                             ? 0.0
                             : outcome.run.history.back().valid_loss;
    outcome.finite = true;
    for (const nn::Scalar v : trainer.global_model()->params().Flatten()) {
      if (!std::isfinite(v)) outcome.finite = false;
    }
    outcome.recall =
        eval::EvaluateRecovery(trainer.global_model(), env->network(), test)
            .recall;
    return outcome;
  };

  TablePrinter table({"Section", "Health", "ValidLoss", "Recall", "Diverged",
                      "Rollbacks", "Quarantine", "Finite", "Wall(s)"});
  std::vector<std::string> json_rows;
  const auto report = [&](const std::string& section, bool health,
                          const RunOutcome& outcome) {
    const fl::FaultStats& faults = outcome.run.faults;
    table.AddRow({section, health ? "on" : "off",
                  TablePrinter::Fmt(JsonSafe(outcome.valid_loss)),
                  TablePrinter::Fmt(outcome.recall),
                  std::to_string(faults.diverged_rounds),
                  std::to_string(faults.rollbacks),
                  std::to_string(faults.quarantine_events),
                  outcome.finite ? "yes" : "no",
                  TablePrinter::Fmt(outcome.seconds, 2)});
    json_rows.push_back(JsonRow(section, health, outcome.seconds,
                                outcome.valid_loss, outcome.recall, faults,
                                outcome.finite, outcome.run.gave_up));
    std::printf("%s health=%s: valid_loss=%.6g recall=%.4f diverged=%lld "
                "rollbacks=%lld quarantine=%lld finite=%d (%.2fs)\n",
                section.c_str(), health ? "on" : "off",
                outcome.valid_loss, outcome.recall,
                static_cast<long long>(faults.diverged_rounds),
                static_cast<long long>(faults.rollbacks),
                static_cast<long long>(faults.quarantine_events),
                outcome.finite ? 1 : 0, outcome.seconds);
    std::fflush(stdout);
  };

  // ---- Section 1: poisoned run, unprotected vs self-healing.
  std::printf("poisoned section: %d/%zu hostile clients, poison after %d "
              "clean updates, %d rounds\n",
              num_hostile, clients.size(), clean_updates, rounds);
  const RunOutcome poisoned_off = run_once(/*health=*/false, /*poisoned=*/true);
  report("poisoned", false, poisoned_off);
  const RunOutcome poisoned_on = run_once(/*health=*/true, /*poisoned=*/true);
  report("poisoned", true, poisoned_on);

  // ---- Section 2: clean run, measuring the monitor's overhead.
  const RunOutcome clean_off = run_once(/*health=*/false, /*poisoned=*/false);
  report("clean", false, clean_off);
  const RunOutcome clean_on = run_once(/*health=*/true, /*poisoned=*/false);
  report("clean", true, clean_on);
  if (clean_on.valid_loss != clean_off.valid_loss) {
    std::printf("ERROR: healing layer perturbed a clean run "
                "(valid_loss %.17g vs %.17g)\n",
                clean_on.valid_loss, clean_off.valid_loss);
    return 1;
  }
  std::printf("clean overhead: %.1f%%\n",
              clean_off.seconds > 0.0
                  ? (clean_on.seconds / clean_off.seconds - 1.0) * 100.0
                  : 0.0);

  std::printf("%s", table.ToString().c_str());
  std::string json = "[\n";
  for (size_t i = 0; i < json_rows.size(); ++i) {
    json += json_rows[i];
    json += (i + 1 < json_rows.size()) ? ",\n" : "\n";
  }
  json += "]\n";
  if (!bench::WriteArtifact(args, "BENCH_self_healing.json", json) ||
      !bench::WriteArtifact(args, "bench_self_healing.csv", table.ToCsv())) {
    return 1;
  }

  // The acceptance bar: the protected run must detect, roll back, and
  // end strictly healthier than the unprotected one.
  if (!poisoned_on.finite || poisoned_on.run.gave_up ||
      poisoned_on.run.faults.diverged_rounds < 1 ||
      poisoned_on.run.faults.rollbacks < 1 ||
      poisoned_on.run.faults.quarantine_events < 1 ||
      !(JsonSafe(poisoned_on.valid_loss) < JsonSafe(poisoned_off.valid_loss))) {
    std::printf("ERROR: self-healing did not beat the unprotected run\n");
    return 1;
  }
  return 0;
}
